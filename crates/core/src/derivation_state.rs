//! Incremental workload-level derivation state.
//!
//! Every budget-aware enumerator repeatedly asks "what does the workload
//! cost if I extend the current configuration `C` by one index `x`?" —
//! the greedy inner loop asks it once per `(candidate, query)` pair per
//! step. Recomputing `d(W, C ∪ {x})` from scratch is
//! `O(queries × multi_entries)` per candidate; [`DerivationState`] instead
//! carries the per-query costs of `C` and extends them with
//! [`WhatIfCache::derived_with_extra`], which the inverted postings make
//! proportional to the entries actually mentioning `x`.
//!
//! The protocol is *probe / stage / commit*:
//!
//! * [`probe_extend`](DerivationState::probe_extend) — pure derived
//!   workload cost of `C ∪ {x}`; no mutation, no allocation.
//! * [`probe_with`](DerivationState::probe_with) — like `probe_extend`
//!   but each per-query value comes from a caller closure (so FCFS
//!   enumerators can spend budget on what-if calls exactly as before);
//!   the per-query values land in a reusable scratch buffer.
//! * [`stage_probe`](DerivationState::stage_probe) — remember the last
//!   probe's buffer as the best candidate so far (a buffer swap).
//! * [`commit_staged`](DerivationState::commit_staged) /
//!   [`commit_recompute`](DerivationState::commit_recompute) — adopt the
//!   winner. `commit_staged` is free (another swap) and is valid because
//!   within one greedy step every cache insert is for some `C ∪ {y}`,
//!   which is never a subset of `C ∪ {x}` for `y ≠ x` — so staged values
//!   cannot go stale. `commit_recompute` re-derives instead, preserving
//!   the derivation-counter behavior of callers that historically did so
//!   (Best-Greedy extraction).
//!
//! All of this is bit-for-bit equivalent to the full rescan: the same
//! `f64` min over the same values, summed in the same query order. The
//! proptest in `tests/derivation_state_props.rs` pins that down.

use crate::derived::WhatIfCache;
use ixtune_common::{IndexId, IndexSet, QueryId};

/// Per-query derived costs of the current configuration, plus their sum,
/// with allocation-free probe/commit extension.
#[derive(Clone, Debug)]
pub struct DerivationState {
    /// The workload slice this state prices (all queries for workload-level
    /// greedy, a single query in two-phase phase 1).
    queries: Vec<QueryId>,
    /// Current configuration `C`. Doubles as the probe scratch set:
    /// `probe_with` inserts the candidate, evaluates, and removes it.
    config: IndexSet,
    /// `cost(q, C)` for each query in `queries`, in order.
    per_query: Vec<f64>,
    /// `Σ per_query` — the committed configuration's workload cost.
    total: f64,
    /// Scratch: per-query values of the most recent probe.
    probe: Vec<f64>,
    /// Per-query values of the best candidate staged so far this step.
    staged: Vec<f64>,
}

impl DerivationState {
    /// State over an explicit workload slice with caller-supplied initial
    /// per-query costs (FCFS callers obtain them through the metered
    /// client so cache-hit telemetry matches the historical code path).
    pub fn for_queries(universe: usize, queries: Vec<QueryId>, init: Vec<f64>) -> Self {
        assert_eq!(queries.len(), init.len());
        let total = init.iter().sum();
        let n = init.len();
        Self {
            queries,
            config: IndexSet::empty(universe),
            per_query: init,
            total,
            probe: Vec::with_capacity(n),
            staged: vec![0.0; n],
        }
    }

    /// State over the whole workload at the empty configuration, priced
    /// straight from the cache (no telemetry side effects).
    pub fn workload(cache: &WhatIfCache) -> Self {
        let queries: Vec<QueryId> = (0..cache.num_queries()).map(QueryId::from).collect();
        let init: Vec<f64> = queries.iter().map(|&q| cache.empty_cost(q)).collect();
        Self::for_queries(cache.universe(), queries, init)
    }

    /// The committed configuration `C`.
    pub fn config(&self) -> &IndexSet {
        &self.config
    }

    /// The workload slice this state prices, in evaluation order.
    pub fn queries(&self) -> &[QueryId] {
        &self.queries
    }

    /// `cost(W, C)` — sum of the committed per-query costs.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Committed per-query costs, parallel to the query slice.
    pub fn per_query(&self) -> &[f64] {
        &self.per_query
    }

    /// Pure incremental probe: `d(W, C ∪ {extra})` from the cache, using
    /// each query's committed cost as the derivation starting point. No
    /// mutation, no allocation.
    pub fn probe_extend(&self, cache: &WhatIfCache, extra: IndexId) -> f64 {
        let mut total = 0.0;
        for (i, &q) in self.queries.iter().enumerate() {
            total += cache.derived_with_extra(q, &self.config, extra, self.per_query[i]);
        }
        total
    }

    /// Probe `C ∪ {extra}` with a caller-supplied per-query evaluator
    /// `eval(q, C ∪ {extra}, extra, cost(q, C))`, recording each value in
    /// the reusable probe buffer. The scratch set handed to `eval`
    /// *includes* `extra` (for what-if calls and atomicity checks);
    /// `derived_with_extra` accepts it unchanged because
    /// `set \ {x} ⊆ C ∪ {x} ⇔ set \ {x} ⊆ C`.
    pub fn probe_with(
        &mut self,
        extra: IndexId,
        eval: &mut impl FnMut(QueryId, &IndexSet, IndexId, f64) -> f64,
    ) -> f64 {
        let fresh = self.config.insert(extra);
        debug_assert!(fresh, "probing an index already in the configuration");
        self.probe.clear();
        let mut total = 0.0;
        for (i, &q) in self.queries.iter().enumerate() {
            let v = eval(q, &self.config, extra, self.per_query[i]);
            self.probe.push(v);
            total += v;
        }
        if fresh {
            self.config.remove(extra);
        }
        total
    }

    /// Keep the most recent [`probe_with`](Self::probe_with) buffer as the
    /// step's best candidate (a buffer swap, no copy).
    pub fn stage_probe(&mut self) {
        std::mem::swap(&mut self.staged, &mut self.probe);
    }

    /// Commit the staged candidate: `C ← C ∪ {extra}` and adopt the staged
    /// per-query values with the caller-tracked `total`. Zero cost — valid
    /// because no cache insert between probe and commit can tighten a
    /// staged value (in-step inserts are for sibling extensions `C ∪ {y}`,
    /// never subsets of `C ∪ {extra}`).
    pub fn commit_staged(&mut self, extra: IndexId, total: f64) {
        self.config.insert(extra);
        std::mem::swap(&mut self.per_query, &mut self.staged);
        self.total = total;
    }

    /// Commit caller-computed per-query values directly: `C ← C ∪ {extra}`
    /// and adopt `values`/`total` as-is. The parallel scan kernel uses
    /// this after re-pricing the winning candidate (its probes — and
    /// their telemetry — already happened inside the scan).
    pub fn commit_values(&mut self, extra: IndexId, values: &[f64], total: f64) {
        debug_assert_eq!(values.len(), self.per_query.len());
        self.config.insert(extra);
        self.per_query.copy_from_slice(values);
        self.total = total;
    }

    /// Commit by re-deriving each per-query value with
    /// [`WhatIfCache::derived_with_extra`] — same values as the probe, but
    /// it issues the derivations again, matching enumerators that
    /// recompute at commit time (Best-Greedy extraction).
    pub fn commit_recompute(&mut self, cache: &WhatIfCache, extra: IndexId) {
        let mut total = 0.0;
        for (i, &q) in self.queries.iter().enumerate() {
            let v = cache.derived_with_extra(q, &self.config, extra, self.per_query[i]);
            self.per_query[i] = v;
            total += v;
        }
        self.config.insert(extra);
        self.total = total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(universe: usize, ids: &[u32]) -> IndexSet {
        IndexSet::from_ids(universe, ids.iter().copied().map(IndexId::new))
    }

    fn primed_cache() -> WhatIfCache {
        let mut c = WhatIfCache::new(6, vec![100.0, 200.0, 150.0]);
        let q0 = QueryId::new(0);
        let q1 = QueryId::new(1);
        c.put(q0, &set(6, &[0]), 60.0);
        c.put(q0, &set(6, &[0, 1]), 40.0);
        c.put(q0, &set(6, &[2, 3]), 30.0);
        c.put(q1, &set(6, &[1]), 120.0);
        c.put(q1, &set(6, &[1, 4]), 90.0);
        c
    }

    #[test]
    fn probe_matches_fresh_workload_derivation() {
        let cache = primed_cache();
        let state = DerivationState::workload(&cache);
        assert_eq!(state.total(), cache.empty_workload_cost());
        for x in 0..6 {
            let extra = IndexId::new(x);
            let probed = state.probe_extend(&cache, extra);
            let fresh = cache.derived_workload(&state.config().with(extra));
            assert_eq!(probed, fresh, "extra={x}");
        }
    }

    #[test]
    fn commit_sequences_track_fresh_recomputation() {
        let cache = primed_cache();
        let mut state = DerivationState::workload(&cache);
        for x in [0u32, 3, 1] {
            let extra = IndexId::new(x);
            state.commit_recompute(&cache, extra);
            let fresh = cache.derived_workload(state.config());
            assert_eq!(state.total(), fresh, "after committing {x}");
            for (i, &v) in state.per_query().iter().enumerate() {
                assert_eq!(v, cache.derived(QueryId::from(i), state.config()));
            }
        }
        assert_eq!(state.config(), &set(6, &[0, 1, 3]));
    }

    #[test]
    fn probe_with_stages_and_commits_without_reallocation() {
        let cache = primed_cache();
        let mut state = DerivationState::workload(&cache);
        let mut eval = |q: QueryId, cfg: &IndexSet, extra: IndexId, cur: f64| {
            assert!(cfg.contains(extra), "scratch set includes the candidate");
            cache.derived_with_extra(q, cfg, extra, cur)
        };
        let a = state.probe_with(IndexId::new(0), &mut eval);
        state.stage_probe();
        let b = state.probe_with(IndexId::new(1), &mut eval);
        assert!(state.config().is_empty(), "probe leaves C untouched");
        if b < a {
            state.stage_probe();
            state.commit_staged(IndexId::new(1), b);
        } else {
            state.commit_staged(IndexId::new(0), a);
        }
        let fresh = cache.derived_workload(state.config());
        assert_eq!(state.total(), fresh);
        assert_eq!(state.per_query().len(), 3);
        for (i, &v) in state.per_query().iter().enumerate() {
            assert_eq!(v, cache.derived(QueryId::from(i), state.config()));
        }
    }

    #[test]
    fn single_query_slice() {
        let cache = primed_cache();
        let q = QueryId::new(1);
        let mut state = DerivationState::for_queries(6, vec![q], vec![cache.empty_cost(q)]);
        let probed = state.probe_extend(&cache, IndexId::new(1));
        assert_eq!(probed, 120.0);
        state.commit_recompute(&cache, IndexId::new(1));
        assert_eq!(state.total(), 120.0);
        assert_eq!(state.probe_extend(&cache, IndexId::new(4)), 90.0);
    }
}
