//! Action selection policies (§6.1 of the paper).
//!
//! * [`SelectionPolicy::Uct`] — the UCB1 criterion (Eq. 5) with λ = √2 by
//!   default; unvisited actions have infinite UCB score and are therefore
//!   visited first (the slow-start behaviour the paper discusses).
//! * [`SelectionPolicy::EpsilonGreedyPrior`] — the paper's ε-greedy
//!   variant (Eq. 6): sample an action with probability proportional to
//!   its estimated value, seeding unvisited actions with the singleton
//!   prior η(W, {a}) computed by Algorithm 4.

use crate::mcts::tree::Node;
use ixtune_common::rng::weighted_choice;
use ixtune_common::IndexId;
use rand::prelude::IndexedRandom;
use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Which action selection policy MCTS uses.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum SelectionPolicy {
    /// UCB1 with exploration constant `lambda`.
    Uct { lambda: f64 },
    /// Value-proportional sampling with singleton priors (Eq. 6).
    EpsilonGreedyPrior,
    /// Boltzmann exploration (§6.1): `Pr(a|s) ∝ exp(Q̂(s,a)/τ)`, with
    /// unvisited actions seeded by the singleton priors. The paper derives
    /// its Eq. 6 variant from this policy to drop the temperature
    /// hyperparameter; we keep Boltzmann for the ablation.
    Boltzmann { tau: f64 },
    /// Classic ε-greedy: the best-known action with probability `1 − ε`,
    /// a uniformly random other action otherwise. Included as the §6.1
    /// strawman the paper's variant improves on.
    ClassicEpsilon { epsilon: f64 },
}

impl SelectionPolicy {
    /// The paper's UCT configuration (λ = √2, following \[38\]).
    pub fn uct() -> Self {
        SelectionPolicy::Uct {
            lambda: std::f64::consts::SQRT_2,
        }
    }

    /// Short label used in the ablation figures ("UCT" / "Prior").
    pub fn label(&self) -> &'static str {
        match self {
            SelectionPolicy::Uct { .. } => "UCT",
            SelectionPolicy::EpsilonGreedyPrior => "Prior",
            SelectionPolicy::Boltzmann { .. } => "Boltzmann",
            SelectionPolicy::ClassicEpsilon { .. } => "EpsGreedy",
        }
    }

    /// Whether the policy consumes singleton priors (Algorithm 4).
    pub fn uses_priors(&self) -> bool {
        !matches!(self, SelectionPolicy::Uct { .. })
    }

    /// Select an action among `actions` at `node`. `priors[i]` is the
    /// singleton prior η(W, {I_i}) for candidate `I_i` (ignored by UCT).
    /// When an [`AmafTable`] is supplied (RAVE updates), per-action value
    /// estimates are blended with the all-moves-as-first statistics.
    /// Returns `None` when `actions` is empty.
    pub fn select(
        &self,
        node: &Node,
        actions: &[IndexId],
        priors: &[f64],
        amaf: Option<&AmafTable>,
        rng: &mut StdRng,
    ) -> Option<IndexId> {
        if actions.is_empty() {
            return None;
        }
        // Value estimates: priors, overwritten by local observations (the
        // actions map is small, so overwrite beats per-action hashing),
        // then optionally RAVE-blended.
        let mut values: Vec<f64> = actions
            .iter()
            .map(|&a| priors.get(a.index()).copied().unwrap_or(0.0).max(0.0))
            .collect();
        let mut local_n: Vec<u32> = vec![0; actions.len()];
        for (&a, stats) in &node.actions {
            if let Ok(pos) = actions.binary_search(&a) {
                values[pos] = stats.q.max(0.0);
                local_n[pos] = stats.n;
            }
        }
        if let Some(table) = amaf {
            for (i, &a) in actions.iter().enumerate() {
                values[i] = table.blended(a, local_n[i], values[i]);
            }
        }

        match *self {
            SelectionPolicy::Uct { lambda } => {
                // Unvisited actions first (infinite UCB score) — unless
                // RAVE already has an estimate for them.
                let unvisited: Vec<IndexId> = actions
                    .iter()
                    .enumerate()
                    .filter(|(i, &a)| local_n[*i] == 0 && amaf.is_none_or(|t| t.visits(a) == 0))
                    .map(|(_, &a)| a)
                    .collect();
                if !unvisited.is_empty() {
                    return unvisited.choose(rng).copied();
                }
                let total = node.n_visits.max(1) as f64;
                actions
                    .iter()
                    .enumerate()
                    .map(|(i, &a)| {
                        let n = local_n[i].max(1) as f64;
                        (a, values[i] + lambda * (total.ln() / n).sqrt())
                    })
                    .max_by(|x, y| x.1.total_cmp(&y.1))
                    .map(|(a, _)| a)
            }
            SelectionPolicy::EpsilonGreedyPrior => {
                weighted_choice(rng, &values).map(|i| actions[i])
            }
            SelectionPolicy::Boltzmann { tau } => {
                let tau = tau.max(1e-6);
                // Softmax with max-shift for numeric stability.
                let peak = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let weights: Vec<f64> = values.iter().map(|v| ((v - peak) / tau).exp()).collect();
                weighted_choice(rng, &weights).map(|i| actions[i])
            }
            SelectionPolicy::ClassicEpsilon { epsilon } => {
                let explore = rng.random::<f64>() < epsilon;
                let best_pos = values
                    .iter()
                    .enumerate()
                    .max_by(|x, y| x.1.total_cmp(y.1))
                    .map(|(i, _)| i)?;
                if !explore || actions.len() == 1 {
                    Some(actions[best_pos])
                } else {
                    let others: Vec<IndexId> = actions
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != best_pos)
                        .map(|(_, &a)| a)
                        .collect();
                    others.choose(rng).copied()
                }
            }
        }
    }
}

/// All-moves-as-first statistics for RAVE (Gelly & Silver \[33\], pointed at
/// by §8 of the paper): every index appearing in an evaluated episode
/// configuration contributes the episode reward to its AMAF average,
/// regardless of the tree depth it was chosen at. The blend
/// `Q̃ = (1−β)·local + β·AMAF` with `β = k / (k + n_local)` trusts AMAF
/// early and the local estimate asymptotically.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AmafTable {
    n: Vec<u32>,
    q: Vec<f64>,
    /// Equivalence parameter `k`.
    pub k: f64,
}

impl AmafTable {
    pub fn new(universe: usize, k: f64) -> Self {
        Self {
            n: vec![0; universe],
            q: vec![0.0; universe],
            k,
        }
    }

    /// Record an episode `reward` for every index in the evaluated
    /// configuration.
    pub fn update(&mut self, config: &ixtune_common::IndexSet, reward: f64) {
        for id in config.iter() {
            let i = id.index();
            self.n[i] += 1;
            self.q[i] += (reward - self.q[i]) / self.n[i] as f64;
        }
    }

    /// AMAF visit count for an action.
    pub fn visits(&self, a: IndexId) -> u32 {
        self.n[a.index()]
    }

    /// Blend the local estimate (`fallback`, backed by `n_local` visits)
    /// with the AMAF estimate.
    pub fn blended(&self, a: IndexId, n_local: u32, fallback: f64) -> f64 {
        let i = a.index();
        if self.n[i] == 0 {
            return fallback;
        }
        let beta = self.k / (self.k + n_local as f64);
        (1.0 - beta) * fallback + beta * self.q[i].max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcts::tree::Tree;
    use ixtune_common::rng::seeded;

    fn id(i: u32) -> IndexId {
        IndexId::new(i)
    }

    #[test]
    fn empty_action_set_returns_none() {
        let t = Tree::new(4);
        let mut rng = seeded(1);
        assert_eq!(
            SelectionPolicy::uct().select(t.node(0), &[], &[], None, &mut rng),
            None
        );
        assert_eq!(
            SelectionPolicy::EpsilonGreedyPrior.select(t.node(0), &[], &[], None, &mut rng),
            None
        );
    }

    #[test]
    fn uct_visits_unvisited_actions_first() {
        let mut t = Tree::new(4);
        let c = t.get_or_create_child(Tree::ROOT, id(0));
        t.update_path(&[(Tree::ROOT, id(0))], c, 1.0); // id(0) visited, reward 1
        let mut rng = seeded(2);
        // Despite id(0)'s perfect reward, unvisited ids must be picked.
        for _ in 0..20 {
            let a = SelectionPolicy::uct()
                .select(
                    t.node(Tree::ROOT),
                    &[id(0), id(1), id(2)],
                    &[],
                    None,
                    &mut rng,
                )
                .unwrap();
            assert_ne!(a, id(0));
        }
    }

    #[test]
    fn uct_exploits_after_all_visited() {
        let mut t = Tree::new(4);
        for (i, r) in [(0u32, 0.9), (1, 0.1), (2, 0.1)] {
            let c = t.get_or_create_child(Tree::ROOT, id(i));
            // Visit each action several times so exploration bonuses level.
            for _ in 0..50 {
                t.update_path(&[(Tree::ROOT, id(i))], c, r);
            }
        }
        let mut rng = seeded(3);
        let a = SelectionPolicy::uct()
            .select(
                t.node(Tree::ROOT),
                &[id(0), id(1), id(2)],
                &[],
                None,
                &mut rng,
            )
            .unwrap();
        assert_eq!(a, id(0));
    }

    #[test]
    fn epsilon_greedy_respects_priors_for_unvisited() {
        let t = Tree::new(3);
        let priors = vec![0.0, 0.0, 0.8];
        let mut rng = seeded(4);
        for _ in 0..50 {
            let a = SelectionPolicy::EpsilonGreedyPrior
                .select(
                    t.node(Tree::ROOT),
                    &[id(0), id(1), id(2)],
                    &priors,
                    None,
                    &mut rng,
                )
                .unwrap();
            assert_eq!(a, id(2), "only nonzero-prior action should be sampled");
        }
    }

    #[test]
    fn epsilon_greedy_mixes_observed_values_and_priors() {
        let mut t = Tree::new(3);
        let c = t.get_or_create_child(Tree::ROOT, id(0));
        for _ in 0..10 {
            t.update_path(&[(Tree::ROOT, id(0))], c, 0.5);
        }
        let priors = vec![0.1, 0.5, 0.0];
        let mut rng = seeded(5);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            let a = SelectionPolicy::EpsilonGreedyPrior
                .select(
                    t.node(Tree::ROOT),
                    &[id(0), id(1), id(2)],
                    &priors,
                    None,
                    &mut rng,
                )
                .unwrap();
            counts[a.index()] += 1;
        }
        // Pr ∝ {0.5 (observed), 0.5 (prior), 0}.
        assert_eq!(counts[2], 0);
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((0.85..1.18).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn boltzmann_prefers_high_values_at_low_temperature() {
        let t = Tree::new(3);
        let priors = vec![0.1, 0.9, 0.2];
        let mut rng = seeded(11);
        let mut counts = [0usize; 3];
        for _ in 0..500 {
            let a = SelectionPolicy::Boltzmann { tau: 0.05 }
                .select(
                    t.node(Tree::ROOT),
                    &[id(0), id(1), id(2)],
                    &priors,
                    None,
                    &mut rng,
                )
                .unwrap();
            counts[a.index()] += 1;
        }
        assert!(counts[1] > 480, "low τ ≈ argmax, got {counts:?}");
        // High temperature approaches uniform.
        let mut hot = [0usize; 3];
        for _ in 0..3_000 {
            let a = SelectionPolicy::Boltzmann { tau: 100.0 }
                .select(
                    t.node(Tree::ROOT),
                    &[id(0), id(1), id(2)],
                    &priors,
                    None,
                    &mut rng,
                )
                .unwrap();
            hot[a.index()] += 1;
        }
        assert!(
            hot.iter().all(|&c| c > 700),
            "high τ ≈ uniform, got {hot:?}"
        );
    }

    #[test]
    fn classic_epsilon_exploits_and_explores() {
        let t = Tree::new(3);
        let priors = vec![0.1, 0.9, 0.2];
        let mut rng = seeded(12);
        // ε = 0: always the best.
        for _ in 0..50 {
            let a = SelectionPolicy::ClassicEpsilon { epsilon: 0.0 }
                .select(
                    t.node(Tree::ROOT),
                    &[id(0), id(1), id(2)],
                    &priors,
                    None,
                    &mut rng,
                )
                .unwrap();
            assert_eq!(a, id(1));
        }
        // ε = 1: never the best (uniform over the rest).
        for _ in 0..50 {
            let a = SelectionPolicy::ClassicEpsilon { epsilon: 1.0 }
                .select(
                    t.node(Tree::ROOT),
                    &[id(0), id(1), id(2)],
                    &priors,
                    None,
                    &mut rng,
                )
                .unwrap();
            assert_ne!(a, id(1));
        }
    }

    #[test]
    fn amaf_table_blends_towards_local_with_visits() {
        let mut table = AmafTable::new(4, 10.0);
        let cfg: ixtune_common::IndexSet = [id(0), id(2)]
            .into_iter()
            .collect::<ixtune_common::IndexSet>();
        // Give action 0 a strong AMAF signal.
        let full = ixtune_common::IndexSet::from_ids(4, cfg.iter());
        for _ in 0..20 {
            table.update(&full, 0.8);
        }
        assert_eq!(table.visits(id(0)), 20);
        assert_eq!(table.visits(id(1)), 0);
        // No local visits → pure AMAF.
        assert!((table.blended(id(0), 0, 0.1) - 0.8).abs() < 1e-9);
        // Unknown action → fallback.
        assert_eq!(table.blended(id(1), 0, 0.3), 0.3);
        // Many local visits → mostly local.
        let b = table.blended(id(0), 1_000, 0.1);
        assert!(b < 0.12, "blend {b} should be near the local value");
    }

    #[test]
    fn rave_lets_uct_skip_the_unvisited_sweep() {
        let t = Tree::new(3);
        let mut table = AmafTable::new(3, 5.0);
        let all = ixtune_common::IndexSet::full(3);
        table.update(&all, 0.5);
        let mut rng = seeded(13);
        // All actions have AMAF data, so UCT must go straight to UCB
        // scoring instead of the unvisited-first sweep.
        let got = SelectionPolicy::uct()
            .select(
                t.node(Tree::ROOT),
                &[id(0), id(1), id(2)],
                &[],
                Some(&table),
                &mut rng,
            )
            .unwrap();
        assert!([id(0), id(1), id(2)].contains(&got));
    }

    #[test]
    fn uses_priors_classification() {
        assert!(!SelectionPolicy::uct().uses_priors());
        assert!(SelectionPolicy::EpsilonGreedyPrior.uses_priors());
        assert!(SelectionPolicy::Boltzmann { tau: 1.0 }.uses_priors());
        assert!(SelectionPolicy::ClassicEpsilon { epsilon: 0.1 }.uses_priors());
    }

    #[test]
    fn epsilon_greedy_uniform_when_all_zero() {
        let t = Tree::new(3);
        let priors = vec![0.0; 3];
        let mut rng = seeded(6);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let a = SelectionPolicy::EpsilonGreedyPrior
                .select(
                    t.node(Tree::ROOT),
                    &[id(0), id(1), id(2)],
                    &priors,
                    None,
                    &mut rng,
                )
                .unwrap();
            seen[a.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
