//! Singleton priors under budget (Algorithm 4 of the paper).
//!
//! The ε-greedy policy needs a prior reward for actions that have never
//! been taken. The paper uses the percentage improvement of the singleton
//! configuration, `η(W, {a})`, computed *under budget*: each budgeted call
//! evaluates one `(query, index)` pair, with **round-robin query
//! selection** (favoring breadth across the workload) and **largest-table
//! index selection** within a query (indexes on big tables matter most
//! under a cardinality constraint — §6.1).

use crate::budget::{MeteredWhatIf, Phase};
use crate::tuner::TuningContext;
use ixtune_common::rng::{derive, weighted_choice};
use ixtune_common::{IndexId, IndexSet, QueryId};
use rand::RngExt;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// The paper's priors budget: `B' = min(B/2, P)` where `B` is the total
/// budget and `P` the number of query–index pairs.
pub fn priors_budget(total_budget: usize, ctx: &TuningContext<'_>) -> usize {
    (total_budget / 2).min(ctx.cands.num_query_index_pairs())
}

/// `QuerySelection` strategies for Algorithm 4 (§6.1). The paper defaults
/// to round-robin ("robust and works well"), and discusses the
/// alternatives implemented here.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum QuerySelection {
    /// Cycle through queries in order — the paper's default, maximizing
    /// breadth across the workload.
    #[default]
    RoundRobin,
    /// Sample queries with probability proportional to `c(q, ∅)` — the
    /// same weighting `EvaluateCostWithBudget` uses.
    CostWeighted,
    /// Round-robin restricted to a random sample of `fraction` of the
    /// queries (per-mille) — the paper's scalability escape hatch for
    /// workloads larger than the budget.
    RandomSubset {
        /// Sample size in per-mille of the workload (e.g. 250 = 25%).
        per_mille: u16,
    },
}

impl QuerySelection {
    pub fn label(&self) -> String {
        match self {
            QuerySelection::RoundRobin => "round-robin".into(),
            QuerySelection::CostWeighted => "cost-weighted".into(),
            QuerySelection::RandomSubset { per_mille } => {
                format!("subset({}%)", *per_mille as f64 / 10.0)
            }
        }
    }
}

/// Compute `η(W, {I})` for every candidate `I`, spending at most
/// `budget_prime` what-if calls through `mw`, with the paper's default
/// round-robin query selection. Returns improvements as fractions in
/// `[0, 1]`.
pub fn compute_priors(
    ctx: &TuningContext<'_>,
    mw: &mut MeteredWhatIf<'_>,
    budget_prime: usize,
    strategy: QuerySelection,
) -> Vec<f64> {
    let prev_phase = mw.set_phase(Phase::Priors);
    let n = ctx.universe();
    let m = ctx.num_queries();
    let base = mw.empty_workload_cost();

    // cost(W, {I}) starts at cost(W, ∅) and is refined per evaluated pair.
    let mut cost_w: Vec<f64> = vec![base; n];

    // Per query: its candidates sorted by table size descending (the
    // paper's IndexSelection), with a cursor over unevaluated ones.
    let schema = ctx.opt.schema();
    let mut queues: Vec<Vec<IndexId>> = (0..m)
        .map(|qi| {
            let ids = ctx.cands.for_query(QueryId::from(qi));
            ctx.cands.by_table_size(schema, ids)
        })
        .collect();
    let mut evaluated: HashSet<(usize, IndexId)> = HashSet::new();

    // Strategy state: an RNG derived from the cache's identity-free stream
    // keeps prior computation deterministic per (strategy, budget).
    let mut rng = derive(0x5e1ec7, "priors-query-selection");
    let eligible: Vec<usize> = match strategy {
        QuerySelection::RandomSubset { per_mille } => {
            let want = ((m as u64 * per_mille as u64).div_ceil(1000) as usize).clamp(1, m);
            let mut pool: Vec<usize> = (0..m).collect();
            // Partial Fisher–Yates.
            for i in 0..want {
                let j = i + rng.random_range(0..pool.len() - i);
                pool.swap(i, j);
            }
            pool.truncate(want);
            pool
        }
        _ => (0..m).collect(),
    };
    let costs: Vec<f64> = eligible
        .iter()
        .map(|&q| mw.empty_cost(QueryId::from(q)))
        .collect();

    let mut spent = 0usize;
    let mut qi = 0usize;
    let mut idle_rounds = 0usize;
    while spent < budget_prime && idle_rounds < m {
        let q = match strategy {
            QuerySelection::RoundRobin | QuerySelection::RandomSubset { .. } => {
                eligible[qi % eligible.len()]
            }
            QuerySelection::CostWeighted => {
                eligible[weighted_choice(&mut rng, &costs).unwrap_or(qi % eligible.len())]
            }
        };
        qi += 1;
        // IndexSelection: next unevaluated candidate of this query.
        let next = queues[q]
            .iter()
            .position(|id| !evaluated.contains(&(q, *id)));
        let Some(pos) = next else {
            idle_rounds += 1;
            continue;
        };
        idle_rounds = 0;
        let id = queues[q].remove(pos);
        evaluated.insert((q, id));
        let qid = QueryId::from(q);
        let single = IndexSet::singleton(n, id);
        let Some(c) = mw.what_if(qid, &single) else {
            break; // global budget exhausted
        };
        spent += 1;
        cost_w[id.index()] += c - mw.empty_cost(qid);
    }

    mw.set_phase(prev_phase);
    cost_w
        .into_iter()
        .map(|c| {
            if base <= 0.0 {
                0.0
            } else {
                (1.0 - c / base).clamp(0.0, 1.0)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixtune_candidates::{generate_default, CandidateSet};
    use ixtune_optimizer::{CostModel, SimulatedOptimizer};
    use ixtune_workload::gen::{synth, tpch};

    fn setup(seed: u64) -> (SimulatedOptimizer, CandidateSet) {
        let inst = synth::instance(seed);
        let cands = generate_default(&inst);
        let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
        (opt, cands)
    }

    #[test]
    fn budget_prime_formula() {
        let (opt, cands) = setup(1);
        let ctx = TuningContext::new(&opt, &cands);
        let p = ctx.cands.num_query_index_pairs();
        assert_eq!(priors_budget(10, &ctx), (10 / 2).min(p));
        assert_eq!(priors_budget(1_000_000, &ctx), p);
    }

    #[test]
    fn priors_are_bounded_and_spend_at_most_bprime() {
        let (opt, cands) = setup(2);
        let ctx = TuningContext::new(&opt, &cands);
        let mut mw = MeteredWhatIf::new(&opt, 100);
        let bp = 6;
        let priors = compute_priors(&ctx, &mut mw, bp, QuerySelection::RoundRobin);
        assert_eq!(priors.len(), ctx.universe());
        assert!(priors.iter().all(|p| (0.0..=1.0).contains(p)));
        assert!(mw.meter().used() <= bp);
    }

    #[test]
    fn zero_budget_gives_zero_priors() {
        let (opt, cands) = setup(3);
        let ctx = TuningContext::new(&opt, &cands);
        let mut mw = MeteredWhatIf::new(&opt, 100);
        let priors = compute_priors(&ctx, &mut mw, 0, QuerySelection::RoundRobin);
        assert!(priors.iter().all(|&p| p == 0.0));
        assert_eq!(mw.meter().used(), 0);
    }

    #[test]
    fn full_pairs_budget_touches_every_query_round_robin() {
        let inst = tpch::generate(1.0);
        let cands = generate_default(&inst);
        let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
        let ctx = TuningContext::new(&opt, &cands);
        let pairs = ctx.cands.num_query_index_pairs();
        let mut mw = MeteredWhatIf::new(&opt, pairs * 2);
        let _ = compute_priors(&ctx, &mut mw, pairs, QuerySelection::RoundRobin);
        // Round-robin should have touched every query with candidates.
        let layout = crate::matrix::Layout::new(mw.into_trace());
        assert_eq!(layout.distinct_queries(), ctx.num_queries());
        // Every budgeted call was for a singleton.
        assert!(layout.calls_by_config_size().keys().all(|&s| s == 1));
    }

    #[test]
    fn useful_indexes_get_positive_priors() {
        let inst = tpch::generate(1.0);
        let cands = generate_default(&inst);
        let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
        let ctx = TuningContext::new(&opt, &cands);
        let mut mw = MeteredWhatIf::new(&opt, 10_000);
        let priors = compute_priors(&ctx, &mut mw, 5_000, QuerySelection::RoundRobin);
        assert!(
            priors.iter().any(|&p| p > 0.01),
            "some TPC-H index must show singleton benefit"
        );
    }

    #[test]
    fn priors_stop_when_global_budget_smaller() {
        let (opt, cands) = setup(4);
        let ctx = TuningContext::new(&opt, &cands);
        let mut mw = MeteredWhatIf::new(&opt, 3);
        let _ = compute_priors(&ctx, &mut mw, 100, QuerySelection::RoundRobin);
        assert_eq!(mw.meter().used(), 3);
    }
}
