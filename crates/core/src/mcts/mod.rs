//! MCTS for budget-aware index tuning (Algorithm 3 and §5–6 of the paper).
//!
//! Each episode walks the search tree from the root (the empty
//! configuration), selecting actions with the configured policy, expanding
//! one node, completing the configuration with a rollout when an unvisited
//! leaf is reached, and spending **exactly one what-if call** to evaluate
//! the sampled configuration (`EvaluateCostWithBudget`: the call goes to a
//! query drawn with probability proportional to its derived cost; all other
//! queries use derived costs). The observed percentage improvement is
//! backed up as the episode reward. When the ε-greedy policy is active, the
//! first `B' = min(B/2, P)` calls bootstrap singleton priors (Algorithm 4).

pub mod extract;
pub mod policy;
pub mod priors;
pub mod rollout;
pub mod tree;

use crate::budget::{MeteredWhatIf, Phase};
use crate::checkpoint::{MctsCheckpoint, SNAPSHOT_VERSION};
use crate::derived::WhatIfCache;
use crate::matrix::Layout;
use crate::stop::{Interrupt, StopReason, StopSignal};
use crate::tuner::{Constraints, Tuner, TuningContext, TuningRequest, TuningResult};
use extract::Extraction;
use ixtune_common::rng::{derive, derive_indexed, weighted_choice};
use ixtune_common::sync::{available_parallelism, effective_threads, AtomicBudget};
use ixtune_common::{IndexId, IndexSet, QueryId};
use policy::SelectionPolicy;
use rand::rngs::StdRng;
use rollout::RolloutPolicy;
use std::sync::atomic::{AtomicUsize, Ordering};
use tree::Tree;

/// The MCTS-based budget-aware tuner.
#[derive(Clone, Copy, Debug)]
pub struct MctsTuner {
    pub selection: SelectionPolicy,
    pub rollout: RolloutPolicy,
    pub extraction: Extraction,
    /// Query-selection strategy for the priors phase (Algorithm 4).
    pub query_selection: priors::QuerySelection,
    /// How episode rewards are backed up into the tree.
    pub update: UpdatePolicy,
    /// Root-parallel worker count (§ DESIGN.md 5c): `1` runs the classic
    /// single-tree search; `L > 1` splits the post-priors budget across
    /// `L` workers with private trees and RNG streams, merging their
    /// statistics into one master tree before extraction. This is a
    /// *logical* count — results depend on it, but not on how many OS
    /// threads execute the workers (`TuningRequest::session_threads`).
    pub root_workers: usize,
}

impl Default for MctsTuner {
    /// The paper's best-performing setting (§7.1): ε-greedy with priors,
    /// myopic rollout with step size 0, Best-Greedy extraction, round-robin
    /// prior query selection, and plain running-average updates.
    fn default() -> Self {
        Self {
            selection: SelectionPolicy::EpsilonGreedyPrior,
            rollout: RolloutPolicy::FixedStep(0),
            extraction: Extraction::BestGreedy,
            query_selection: priors::QuerySelection::RoundRobin,
            update: UpdatePolicy::Average,
            root_workers: 1,
        }
    }
}

/// Reward back-up policy (§8 points at RAVE as a possible refinement).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum UpdatePolicy {
    /// Plain running average of episode rewards along the path.
    Average,
    /// Rapid Action Value Estimation (Gelly & Silver \[33\]): blend the
    /// per-node value with an all-moves-as-first estimate shared across the
    /// tree, `Q̃ = (1−β)·Q + β·AMAF` with `β = k/(k + n(s,a))`.
    Rave {
        /// Equivalence parameter `k`: how many per-node visits it takes for
        /// the local estimate to outweigh the AMAF estimate.
        k: f64,
    },
}

use serde::{Deserialize, Serialize};

impl MctsTuner {
    /// Set the selection policy (builder-style; start from
    /// `MctsTuner::default()`).
    pub fn with_selection(mut self, selection: SelectionPolicy) -> Self {
        self.selection = selection;
        self
    }

    /// Set the rollout policy.
    pub fn with_rollout(mut self, rollout: RolloutPolicy) -> Self {
        self.rollout = rollout;
        self
    }

    /// Set the extraction policy.
    pub fn with_extraction(mut self, extraction: Extraction) -> Self {
        self.extraction = extraction;
        self
    }

    /// Set the reward back-up policy.
    pub fn with_update(mut self, update: UpdatePolicy) -> Self {
        self.update = update;
        self
    }

    /// Set the priors-phase query-selection strategy (Algorithm 4).
    pub fn with_query_selection(mut self, query_selection: priors::QuerySelection) -> Self {
        self.query_selection = query_selection;
        self
    }

    /// Set the root-parallel worker count (`1` = classic single tree).
    pub fn with_root_workers(mut self, root_workers: usize) -> Self {
        self.root_workers = root_workers.max(1);
        self
    }

    /// The configuration labels used by the ablation figures, e.g.
    /// `"Prior + Greedy"`.
    pub fn ablation_label(&self) -> String {
        let ext = match self.extraction {
            Extraction::Bce => "Only",
            Extraction::BestGreedy => "+ Greedy",
            Extraction::Hybrid => "+ Hybrid",
            Extraction::TreeByValue => "+ Tree(Q)",
            Extraction::TreeByVisits => "+ Tree(n)",
        };
        format!("{} {}", self.selection.label(), ext)
    }

    /// Tune and also return the best-so-far *estimated* improvement after
    /// each episode (from the budgeted evaluations, like the baselines'
    /// convergence traces in Figures 14/21).
    pub fn tune_traced(
        &self,
        ctx: &TuningContext<'_>,
        req: &TuningRequest,
    ) -> (TuningResult, Vec<f64>) {
        self.run(ctx, req)
    }

    /// `EvaluateCostWithBudget` (Algorithm 3): estimate `cost(W, C)` with a
    /// single budgeted what-if call against a query sampled proportionally
    /// to its derived cost. Returns `None` once the budget is exhausted.
    /// `derived` is a reusable scratch buffer owned by the episode loop.
    fn evaluate_with_budget(
        &self,
        mw: &mut MeteredWhatIf<'_>,
        config: &IndexSet,
        rng: &mut StdRng,
        derived: &mut Vec<f64>,
    ) -> Option<f64> {
        let m = mw.num_queries();
        derived.clear();
        derived.extend((0..m).map(|q| mw.derived(QueryId::from(q), config)));
        let pick = weighted_choice(rng, derived)?;
        let q = QueryId::from(pick);
        let exact = mw.what_if(q, config)?;
        let total: f64 = exact
            + derived
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != pick)
                .map(|(_, d)| d)
                .sum::<f64>();
        Some(total)
    }

    /// One episode of Algorithm 3. Returns `false` when the budget ran out
    /// before the episode could evaluate a configuration.
    #[allow(clippy::too_many_arguments)]
    fn run_episode(
        &self,
        ctx: &TuningContext<'_>,
        constraints: &Constraints,
        mw: &mut MeteredWhatIf<'_>,
        tree: &mut Tree,
        priors: &[f64],
        amaf: &mut Option<policy::AmafTable>,
        best: &mut Option<(IndexSet, f64)>,
        rng: &mut StdRng,
        buffers: &mut EpisodeBuffers,
    ) -> bool {
        // --- Selection / expansion (SampleConfiguration) ---
        let mut path: Vec<(usize, IndexId)> = Vec::new();
        let mut node = Tree::ROOT;
        let actions = &mut buffers.actions;
        let (config, via_rollout) = loop {
            let n = tree.node(node);
            let is_leaf = n.children.is_empty();
            let terminal = n.config.len() >= constraints.k;
            if is_leaf && !n.visited && node != Tree::ROOT {
                // Unvisited leaf: simulate via rollout.
                let completed =
                    self.rollout
                        .rollout(ctx, constraints, &self.selection, priors, &n.config, rng);
                break (completed, true);
            }
            if terminal {
                break (n.config.clone(), false);
            }
            let filter = constraints.extension_filter(ctx, &n.config);
            actions.clear();
            actions.extend(
                n.config
                    .complement_iter()
                    .filter(|&a| filter.admits(ctx, a)),
            );
            let Some(action) = self
                .selection
                .select(n, actions, priors, amaf.as_ref(), rng)
            else {
                break (n.config.clone(), false);
            };
            let child = tree.get_or_create_child(node, action);
            path.push((node, action));
            node = child;
        };

        // --- Evaluation (one budgeted what-if call) ---
        mw.set_phase(if via_rollout {
            Phase::Rollout
        } else {
            Phase::Selection
        });
        let Some(cost) = self.evaluate_with_budget(mw, &config, rng, &mut buffers.derived) else {
            return false;
        };

        // --- Update ---
        let base = mw.empty_workload_cost();
        let reward = if base > 0.0 {
            (1.0 - cost / base).clamp(0.0, 1.0)
        } else {
            0.0
        };
        tree.update_path(&path, node, reward);
        if let Some(table) = amaf {
            table.update(&config, reward);
        }

        // Track the best explored configuration (for BCE / Hybrid).
        if constraints.satisfied_by(ctx, &config) && best.as_ref().is_none_or(|(_, c)| cost < *c) {
            *best = Some((config, cost));
        }
        true
    }
}

/// Reusable per-episode scratch buffers, hoisted into [`MctsTuner::run`] so
/// the episode loop allocates nothing per episode.
#[derive(Default)]
struct EpisodeBuffers {
    /// Per-query derived costs for `EvaluateCostWithBudget`.
    derived: Vec<f64>,
    /// Admissible action set for tree selection.
    actions: Vec<IndexId>,
}

/// The full mutable state of one (single-tree) MCTS search between
/// episodes. Everything here — plus the [`MeteredWhatIf`] it runs against —
/// is what a checkpoint must capture for a suspended session to resume
/// bit-identically (scratch buffers are cleared before every use, so they
/// carry nothing across episodes).
pub(crate) struct MctsState {
    rng: StdRng,
    priors: Vec<f64>,
    tree: Tree,
    amaf: Option<policy::AmafTable>,
    best: Option<(IndexSet, f64)>,
    /// Best-so-far estimated improvement after each budget-consuming
    /// episode (the convergence trace).
    conv: Vec<f64>,
    /// Consecutive budget-free episodes; the loop stops at 500.
    idle_streak: usize,
}

/// What a resumable MCTS run produced: either a finished result (with its
/// convergence trace) or a checkpoint of a suspended session.
#[allow(clippy::large_enum_variant)] // Finished is the common case; boxing it would tax every run
pub enum MctsOutcome {
    Finished(TuningResult, Vec<f64>),
    Suspended(Box<MctsCheckpoint>),
}

impl Tuner for MctsTuner {
    fn name(&self) -> String {
        let default = MctsTuner::default();
        if self.selection == default.selection
            && self.rollout == default.rollout
            && self.extraction == default.extraction
            && self.query_selection == default.query_selection
            && self.update == default.update
            && self.root_workers == default.root_workers
        {
            "MCTS".into()
        } else {
            let update = match self.update {
                UpdatePolicy::Average => String::new(),
                UpdatePolicy::Rave { k } => format!(", RAVE(k={k})"),
            };
            let workers = if self.root_workers > 1 {
                format!(", W={}", self.root_workers)
            } else {
                String::new()
            };
            format!(
                "MCTS[{}, {}, {}{}{}]",
                self.selection.label(),
                self.rollout.label(),
                self.extraction.label(),
                update,
                workers
            )
        }
    }

    fn is_stochastic(&self) -> bool {
        true
    }

    fn tune(&self, ctx: &TuningContext<'_>, req: &TuningRequest) -> TuningResult {
        self.run(ctx, req).0
    }

    /// Suspend requests degrade to a cancel on this path (the caller gets
    /// a best-so-far result, not a checkpoint); resumable callers use
    /// [`MctsTuner::run_resumable`] instead.
    fn tune_with_stop(
        &self,
        ctx: &TuningContext<'_>,
        req: &TuningRequest,
        stop: &StopSignal,
    ) -> TuningResult {
        match self.run_with_stop(ctx, req, stop, false) {
            MctsOutcome::Finished(result, _) => result,
            MctsOutcome::Suspended(_) => unreachable!("suspension disabled"),
        }
    }
}

impl MctsTuner {
    /// The episode phase of Algorithm 3: run episodes (one budgeted call
    /// each) until the budget is exhausted. Episodes whose evaluation hits
    /// the cache are free; the idle-streak cap keeps a fully-cached search
    /// space from spinning forever. Appends the best-so-far estimated
    /// improvement to `trace` after every budget-consuming episode.
    /// Polls the [`StopSignal`] at the top of every episode (so an
    /// interruption lands within one episode) and returns the interrupt it
    /// observed, or `None` when the search terminated on its own.
    fn episode_loop(
        &self,
        ctx: &TuningContext<'_>,
        constraints: &Constraints,
        mw: &mut MeteredWhatIf<'_>,
        state: &mut MctsState,
        stop: &StopSignal,
    ) -> Option<Interrupt> {
        let base = mw.empty_workload_cost();
        let mut buffers = EpisodeBuffers::default();
        let obs = mw.obs().clone();
        while !mw.meter().exhausted() && state.idle_streak < 500 {
            if let Some(interrupt) = stop.poll(mw.meter().used()) {
                return Some(interrupt);
            }
            let ep_t0 = obs.span_start();
            let before = mw.meter().used();
            let MctsState {
                rng,
                priors,
                tree,
                amaf,
                best,
                conv,
                idle_streak,
            } = state;
            let progressed = self.run_episode(
                ctx,
                constraints,
                mw,
                tree,
                priors,
                amaf,
                best,
                rng,
                &mut buffers,
            );
            if let Some(t0) = ep_t0 {
                obs.span_end(
                    t0,
                    "episode",
                    "mcts",
                    vec![("used".into(), mw.meter().used().to_string())],
                );
            }
            mw.publish_obs();
            if !progressed {
                break;
            }
            if mw.meter().used() == before {
                *idle_streak += 1;
            } else {
                *idle_streak = 0;
                let best_imp = best
                    .as_ref()
                    .map(|(_, c)| {
                        if base > 0.0 {
                            (1.0 - c / base).max(0.0)
                        } else {
                            0.0
                        }
                    })
                    .unwrap_or(0.0);
                conv.push(best_imp);
                if stop.is_armed() {
                    stop.publish(mw.telemetry(), best_imp);
                }
            }
        }
        None
    }

    /// Fresh search state: the derived RNG stream, the priors phase
    /// (Algorithm 4 — spends budget through `mw`), an empty tree, and the
    /// AMAF table when RAVE updates are configured. The priors phase is
    /// atomic with respect to interruption: a stop lands at the first
    /// episode-boundary poll after it.
    fn start_state(
        &self,
        ctx: &TuningContext<'_>,
        req: &TuningRequest,
        mw: &mut MeteredWhatIf<'_>,
    ) -> MctsState {
        let rng = derive(req.seed, "mcts");
        let priors = if self.selection.uses_priors() {
            let obs = mw.obs().clone();
            let t0 = obs.span_start();
            let bp = priors::priors_budget(req.budget, ctx);
            let priors = priors::compute_priors(ctx, mw, bp, self.query_selection);
            if let Some(t0) = t0 {
                obs.span_end(
                    t0,
                    "priors",
                    "mcts",
                    vec![("budget".into(), bp.to_string())],
                );
            }
            mw.publish_obs();
            priors
        } else {
            vec![0.0; ctx.universe()]
        };
        let amaf = match self.update {
            UpdatePolicy::Average => None,
            UpdatePolicy::Rave { k } => Some(policy::AmafTable::new(ctx.universe(), k)),
        };
        MctsState {
            rng,
            priors,
            tree: Tree::new(ctx.universe()),
            amaf,
            best: None,
            conv: Vec::new(),
            idle_streak: 0,
        }
    }

    /// Extraction + result assembly for a search that is done (finished
    /// naturally or stopped best-so-far).
    fn finish(
        &self,
        ctx: &TuningContext<'_>,
        req: &TuningRequest,
        mut mw: MeteredWhatIf<'_>,
        state: MctsState,
        interrupt: Option<Interrupt>,
    ) -> (TuningResult, Vec<f64>) {
        let threads = effective_threads(req.session_threads);
        let obs = mw.obs().clone();
        let t0 = obs.span_start();
        let config = self.extraction.extract(
            ctx,
            &req.constraints,
            mw.cache(),
            &state.tree,
            state.best.as_ref().map(|(c, _)| c),
            threads,
        );
        if let Some(t0) = t0 {
            obs.span_end(
                t0,
                "extraction",
                "mcts",
                vec![("chosen".into(), config.len().to_string())],
            );
        }
        mw.publish_obs();
        let used = mw.meter().used();
        let reason = mw.stop_reason(interrupt);
        let mut telemetry = mw.telemetry();
        telemetry.session_threads = threads;
        let result =
            TuningResult::evaluate(self.name(), ctx, config, used, Layout::new(mw.into_trace()))
                .with_telemetry(telemetry)
                .with_stop_reason(reason);
        (result, state.conv)
    }

    /// Run the episode loop to completion, suspension, or interruption.
    /// With `allow_suspend`, a suspend observation checkpoints the session;
    /// without it (non-resumable callers), suspend degrades to a cancel.
    fn drive(
        &self,
        ctx: &TuningContext<'_>,
        req: &TuningRequest,
        mut mw: MeteredWhatIf<'_>,
        mut state: MctsState,
        stop: &StopSignal,
        allow_suspend: bool,
    ) -> MctsOutcome {
        match self.episode_loop(ctx, &req.constraints, &mut mw, &mut state, stop) {
            Some(Interrupt::Suspended) if allow_suspend => {
                let obs = mw.obs().clone();
                let t0 = obs.span_start();
                let ckpt = self.capture(req, &mw, &state);
                if let Some(t0) = t0 {
                    obs.span_end(
                        t0,
                        "capture",
                        "checkpoint",
                        vec![("calls_used".into(), ckpt.meter.used().to_string())],
                    );
                }
                mw.publish_obs();
                MctsOutcome::Suspended(Box::new(ckpt))
            }
            interrupt => {
                let (result, conv) = self.finish(ctx, req, mw, state, interrupt);
                MctsOutcome::Finished(result, conv)
            }
        }
    }

    fn run_with_stop(
        &self,
        ctx: &TuningContext<'_>,
        req: &TuningRequest,
        stop: &StopSignal,
        allow_suspend: bool,
    ) -> MctsOutcome {
        if self.root_workers > 1 {
            let (result, conv) = self.run_root_parallel(ctx, req, stop);
            return MctsOutcome::Finished(result, conv);
        }
        let src = ctx.source();
        let mut mw = MeteredWhatIf::new(&src, req.budget);
        let state = self.start_state(ctx, req, &mut mw);
        self.drive(ctx, req, mw, state, stop, allow_suspend)
    }

    /// Run under a stop signal with suspension enabled: a suspend request
    /// yields a checkpoint instead of a result. Root-parallel searches are
    /// not suspendable (worker trees have no serialized form mid-flight);
    /// for them a suspend degrades to a cancel and the outcome is always
    /// `Finished`.
    pub fn run_resumable(
        &self,
        ctx: &TuningContext<'_>,
        req: &TuningRequest,
        stop: &StopSignal,
    ) -> MctsOutcome {
        self.run_with_stop(ctx, req, stop, self.root_workers == 1)
    }

    /// Resume a session from a checkpoint captured by
    /// [`run_resumable`](Self::run_resumable). The restored search replays
    /// from the exact episode boundary where it was suspended: same RNG
    /// stream, same tree arena, same cache contents and budget consumption
    /// — so its final result is bit-identical to an uninterrupted run
    /// (modulo wall-clock, which the caller stamps).
    pub fn resume(
        &self,
        ctx: &TuningContext<'_>,
        ckpt: &MctsCheckpoint,
        stop: &StopSignal,
    ) -> Result<MctsOutcome, String> {
        if ckpt.version != SNAPSHOT_VERSION {
            return Err(format!(
                "checkpoint version {} (this build reads {SNAPSHOT_VERSION})",
                ckpt.version
            ));
        }
        if ckpt.algorithm != self.name() {
            return Err(format!(
                "checkpoint belongs to \"{}\", resuming tuner is \"{}\"",
                ckpt.algorithm,
                self.name()
            ));
        }
        if self.root_workers > 1 {
            return Err("root-parallel sessions are not suspendable".to_string());
        }
        if ckpt.cache.universe() != ctx.universe() || ckpt.cache.num_queries() != ctx.num_queries()
        {
            return Err(format!(
                "checkpoint workload shape ({} candidates × {} queries) does not match \
                 the context ({} × {})",
                ckpt.cache.universe(),
                ckpt.cache.num_queries(),
                ctx.universe(),
                ctx.num_queries()
            ));
        }
        let cache = WhatIfCache::from_snapshot(&ckpt.cache)?;
        let tree = Tree::from_snapshot(&ckpt.tree)?;
        let src = ctx.source();
        let mw =
            MeteredWhatIf::from_parts(&src, cache, ckpt.meter, ckpt.trace.clone(), ckpt.counters);
        let state = MctsState {
            rng: StdRng::from_state([ckpt.rng.0, ckpt.rng.1, ckpt.rng.2, ckpt.rng.3]),
            priors: ckpt.priors.clone(),
            tree,
            amaf: ckpt.amaf.clone(),
            best: ckpt.best.clone(),
            conv: ckpt.conv.clone(),
            idle_streak: ckpt.idle_streak,
        };
        Ok(self.drive(ctx, &ckpt.req, mw, state, stop, true))
    }

    fn capture(
        &self,
        req: &TuningRequest,
        mw: &MeteredWhatIf<'_>,
        state: &MctsState,
    ) -> MctsCheckpoint {
        let s = state.rng.state();
        MctsCheckpoint {
            version: SNAPSHOT_VERSION,
            algorithm: self.name(),
            req: *req,
            rng: (s[0], s[1], s[2], s[3]),
            priors: state.priors.clone(),
            tree: state.tree.snapshot(),
            cache: mw.cache().snapshot(),
            meter: *mw.meter(),
            trace: mw.trace().to_vec(),
            counters: mw.counters(),
            best: state.best.clone(),
            conv: state.conv.clone(),
            idle_streak: state.idle_streak,
            amaf: state.amaf.clone(),
        }
    }

    fn run(&self, ctx: &TuningContext<'_>, req: &TuningRequest) -> (TuningResult, Vec<f64>) {
        match self.run_with_stop(ctx, req, &StopSignal::never(), false) {
            MctsOutcome::Finished(result, conv) => (result, conv),
            MctsOutcome::Suspended(_) => unreachable!("suspension disabled"),
        }
    }

    /// Root-parallel search: after the (shared, once-only) priors phase,
    /// the remaining budget is partitioned into static per-worker shares
    /// drawn through an atomic reservation pool, and each worker runs the
    /// classic episode loop on a private tree, a private clone of the
    /// master cache, and a private RNG stream split from the session seed.
    /// Worker statistics are merged into the master tree *in worker order*,
    /// so the result depends on `root_workers` but not on
    /// `session_threads` (which only chooses how many OS threads execute
    /// the workers).
    /// A stop signal interrupts every worker at its next episode boundary
    /// (suspend degrades to cancel — worker trees are merged, not
    /// checkpointed) and the merged best-so-far result carries the reason.
    fn run_root_parallel(
        &self,
        ctx: &TuningContext<'_>,
        req: &TuningRequest,
        stop: &StopSignal,
    ) -> (TuningResult, Vec<f64>) {
        let constraints = &req.constraints;
        let budget = req.budget;
        let threads = effective_threads(req.session_threads);
        let src = ctx.source();
        let obs = ctx.obs().clone();
        let mut master = MeteredWhatIf::new(&src, budget);

        let priors = if self.selection.uses_priors() {
            let t0 = obs.span_start();
            let bp = priors::priors_budget(budget, ctx);
            let priors = priors::compute_priors(ctx, &mut master, bp, self.query_selection);
            if let Some(t0) = t0 {
                obs.span_end(
                    t0,
                    "priors",
                    "mcts",
                    vec![("budget".into(), bp.to_string())],
                );
            }
            master.publish_obs();
            priors
        } else {
            vec![0.0; ctx.universe()]
        };

        let workers = self.root_workers;
        let remaining = master.meter().remaining();
        let pool = AtomicBudget::new(remaining);
        let snapshot = master.cache().clone();

        struct WorkerOut {
            tree: Tree,
            best: Option<(IndexSet, f64)>,
            /// Budget-consuming calls in this worker's chronological order.
            calls: Vec<(QueryId, IndexSet, f64)>,
            conv: Vec<f64>,
            telemetry: crate::budget::SessionTelemetry,
            used: usize,
            shortfall: bool,
            interrupt: Option<Interrupt>,
        }

        let run_worker = |w: usize| -> WorkerOut {
            // Static shares partition `remaining` exactly, so every
            // reservation is fully granted no matter in which order the
            // workers reach the pool — grants are deterministic.
            let share = remaining / workers + usize::from(w < remaining % workers);
            let granted = pool.reserve(share);
            let shortfall = granted < share;
            let mut mw = MeteredWhatIf::with_cache(&src, granted, snapshot.clone());
            let mut state = MctsState {
                rng: derive_indexed(req.seed, "mcts-root-worker", w as u64),
                priors: priors.clone(),
                tree: Tree::new(ctx.universe()),
                amaf: match self.update {
                    UpdatePolicy::Average => None,
                    UpdatePolicy::Rave { k } => Some(policy::AmafTable::new(ctx.universe(), k)),
                },
                best: None,
                conv: Vec::new(),
                idle_streak: 0,
            };
            let interrupt = self.episode_loop(ctx, constraints, &mut mw, &mut state, stop);
            let calls: Vec<(QueryId, IndexSet, f64)> = mw
                .trace()
                .iter()
                .map(|(q, cfg)| {
                    let cost = mw.cache().get(*q, cfg).expect("traced call is cached");
                    (*q, cfg.clone(), cost)
                })
                .collect();
            WorkerOut {
                tree: state.tree,
                best: state.best,
                calls,
                conv: state.conv,
                telemetry: mw.telemetry(),
                used: mw.meter().used(),
                shortfall,
                interrupt,
            }
        };

        let os_threads = threads.min(available_parallelism()).min(workers);
        let outs: Vec<WorkerOut> = if os_threads <= 1 {
            (0..workers).map(run_worker).collect()
        } else {
            let next = AtomicUsize::new(0);
            let mut slots: Vec<Option<WorkerOut>> = (0..workers).map(|_| None).collect();
            let collected = crossbeam::thread::scope(|s| {
                let handles: Vec<_> = (0..os_threads)
                    .map(|_| {
                        let next = &next;
                        let run_worker = &run_worker;
                        s.spawn(move |_| {
                            let mut mine = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= workers {
                                    return mine;
                                }
                                mine.push((i, run_worker(i)));
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("mcts root worker panicked"))
                    .collect::<Vec<_>>()
            })
            .expect("mcts root-parallel scope panicked");
            for (i, out) in collected {
                slots[i] = Some(out);
            }
            slots
                .into_iter()
                .map(|s| s.expect("every worker ran exactly once"))
                .collect()
        };

        // Merge in worker order: tree statistics, telemetry counters,
        // budget-consuming calls (into the master cache and layout trace),
        // the global best, and the concatenated convergence segments.
        let merge_t0 = obs.span_start();
        let mut tree = Tree::new(ctx.universe());
        let mut best: Option<(IndexSet, f64)> = None;
        let mut conv: Vec<f64> = Vec::new();
        let mut worker_used = 0usize;
        let mut worker_derivs = 0usize;
        let mut interrupt: Option<Interrupt> = None;
        for out in outs {
            interrupt = interrupt.or(out.interrupt);
            tree.merge_from(&out.tree);
            {
                let c = master.counters_mut();
                c.what_if_calls += out.telemetry.what_if_calls;
                c.cache_hits += out.telemetry.cache_hits;
                c.priors_calls += out.telemetry.priors_calls;
                c.selection_calls += out.telemetry.selection_calls;
                c.rollout_calls += out.telemetry.rollout_calls;
                c.other_calls += out.telemetry.other_calls;
                c.parallel_scans += out.telemetry.parallel_scans;
                c.warm_hits += out.telemetry.warm_hits;
                c.tree_merges += 1;
                c.reservation_shortfalls += usize::from(out.shortfall);
            }
            worker_derivs += out.telemetry.derivations;
            worker_used += out.used;
            for (q, cfg, cost) in out.calls {
                master.absorb_call(q, cfg, cost);
            }
            if let Some((cfg, cost)) = out.best {
                if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                    best = Some((cfg, cost));
                }
            }
            conv.extend(out.conv);
        }
        if let Some(t0) = merge_t0 {
            obs.span_end(
                t0,
                "merge",
                "mcts",
                vec![("workers".into(), workers.to_string())],
            );
        }
        master.publish_obs();
        // Worker derivations were counted on private cache clones and never
        // reach the master's counters — mirror them into the registry
        // directly so it stays equal to the result's telemetry.
        obs.publish_deltas(
            &crate::budget::SessionTelemetry::default(),
            &crate::budget::SessionTelemetry {
                derivations: worker_derivs,
                ..Default::default()
            },
        );

        // Extraction over the merged cache and tree.
        let ext_t0 = obs.span_start();
        let config = self.extraction.extract(
            ctx,
            constraints,
            master.cache(),
            &tree,
            best.as_ref().map(|(c, _)| c),
            threads,
        );
        if let Some(t0) = ext_t0 {
            obs.span_end(
                t0,
                "extraction",
                "mcts",
                vec![("chosen".into(), config.len().to_string())],
            );
        }
        master.publish_obs();
        let used = master.meter().used() + worker_used;
        debug_assert!(used <= budget, "workers oversubscribed the budget");
        // Master-side derivations (priors + extraction) live in the master
        // cache; worker derivations were counted on their private clones.
        let mut telemetry = master.telemetry();
        telemetry.derivations += worker_derivs;
        telemetry.session_threads = threads;
        // A worker that degraded forfeited its private grant, so the summed
        // `used` may sit below `budget`; the shared degraded flag still
        // marks the run as salvaged.
        let reason = if interrupt.is_none() && master.degraded() {
            StopReason::Degraded
        } else {
            StopReason::from_interrupt(interrupt, used >= budget)
        };
        let result = TuningResult::evaluate(
            self.name(),
            ctx,
            config,
            used,
            Layout::new(master.into_trace()),
        )
        .with_telemetry(telemetry)
        .with_stop_reason(reason);
        (result, conv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixtune_candidates::{generate_default, CandidateSet};
    use ixtune_optimizer::{CostModel, SimulatedOptimizer};
    use ixtune_workload::gen::{synth, tpch};

    fn setup(seed: u64) -> (SimulatedOptimizer, CandidateSet) {
        let inst = synth::instance(seed);
        let cands = generate_default(&inst);
        let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
        (opt, cands)
    }

    fn tpch_ctx() -> (SimulatedOptimizer, CandidateSet) {
        let inst = tpch::generate(1.0);
        let cands = generate_default(&inst);
        let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
        (opt, cands)
    }

    #[test]
    fn respects_budget_exactly() {
        let (opt, cands) = setup(1);
        let ctx = TuningContext::new(&opt, &cands);
        for budget in [0usize, 1, 3, 25, 100] {
            let r = MctsTuner::default()
                .tune(&ctx, &TuningRequest::cardinality(3, budget).with_seed(7));
            assert!(r.calls_used <= budget, "{} > {budget}", r.calls_used);
        }
    }

    #[test]
    fn respects_cardinality_constraint() {
        let (opt, cands) = setup(2);
        let ctx = TuningContext::new(&opt, &cands);
        for k in [1usize, 2, 5] {
            let r =
                MctsTuner::default().tune(&ctx, &TuningRequest::cardinality(k, 60).with_seed(3));
            assert!(r.config.len() <= k);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (opt, cands) = setup(3);
        let ctx = TuningContext::new(&opt, &cands);
        let req = TuningRequest::cardinality(3, 50).with_seed(42);
        let a = MctsTuner::default().tune(&ctx, &req);
        let b = MctsTuner::default().tune(&ctx, &req);
        assert_eq!(a.config, b.config);
        assert_eq!(a.calls_used, b.calls_used);
    }

    #[test]
    fn finds_improvement_on_tpch() {
        let (opt, cands) = tpch_ctx();
        let ctx = TuningContext::new(&opt, &cands);
        let r = MctsTuner::default().tune(&ctx, &TuningRequest::cardinality(5, 200).with_seed(1));
        assert!(
            r.improvement > 0.05,
            "MCTS with 200 calls should improve TPC-H, got {}",
            r.improvement
        );
    }

    #[test]
    fn uct_variant_runs_and_respects_budget() {
        let (opt, cands) = tpch_ctx();
        let ctx = TuningContext::new(&opt, &cands);
        let tuner = MctsTuner::default()
            .with_selection(SelectionPolicy::uct())
            .with_rollout(RolloutPolicy::RandomStep)
            .with_extraction(Extraction::Bce);
        let r = tuner.tune(&ctx, &TuningRequest::cardinality(5, 100).with_seed(5));
        assert!(r.calls_used <= 100);
        assert!(r.improvement >= 0.0);
    }

    #[test]
    fn all_policy_combinations_run() {
        let (opt, cands) = setup(6);
        let ctx = TuningContext::new(&opt, &cands);
        let req = TuningRequest::cardinality(2, 30).with_seed(9);
        for selection in [SelectionPolicy::uct(), SelectionPolicy::EpsilonGreedyPrior] {
            for rollout in [
                RolloutPolicy::RandomStep,
                RolloutPolicy::FixedStep(0),
                RolloutPolicy::FixedStep(1),
            ] {
                for extraction in [Extraction::Bce, Extraction::BestGreedy, Extraction::Hybrid] {
                    let tuner = MctsTuner::default()
                        .with_selection(selection)
                        .with_rollout(rollout)
                        .with_extraction(extraction);
                    let r = tuner.tune(&ctx, &req);
                    assert!(r.calls_used <= 30, "{}", tuner.name());
                    assert!(r.config.len() <= 2);
                }
            }
        }
    }

    #[test]
    fn rave_and_alternate_policies_respect_budget() {
        let (opt, cands) = setup(7);
        let ctx = TuningContext::new(&opt, &cands);
        let req = TuningRequest::cardinality(3, 60).with_seed(4);
        let variants = [
            MctsTuner::default().with_update(UpdatePolicy::Rave { k: 50.0 }),
            MctsTuner::default().with_selection(SelectionPolicy::Boltzmann { tau: 0.1 }),
            MctsTuner::default().with_selection(SelectionPolicy::ClassicEpsilon { epsilon: 0.2 }),
            MctsTuner::default()
                .with_selection(SelectionPolicy::uct())
                .with_update(UpdatePolicy::Rave { k: 20.0 }),
            MctsTuner::default().with_query_selection(QuerySelection::CostWeighted),
            MctsTuner::default()
                .with_query_selection(QuerySelection::RandomSubset { per_mille: 500 }),
        ];
        for tuner in variants {
            let r = tuner.tune(&ctx, &req);
            assert!(r.calls_used <= 60, "{}", tuner.name());
            assert!(r.config.len() <= 3, "{}", tuner.name());
            let again = tuner.tune(&ctx, &req);
            assert_eq!(r.config, again.config, "{} not deterministic", tuner.name());
        }
    }

    use crate::mcts::priors::QuerySelection;

    #[test]
    fn tree_walk_extractions_respect_constraints_and_budget() {
        let (opt, cands) = tpch_ctx();
        let ctx = TuningContext::new(&opt, &cands);
        let req = TuningRequest::cardinality(5, 150).with_seed(3);
        for extraction in [Extraction::TreeByValue, Extraction::TreeByVisits] {
            let tuner = MctsTuner::default().with_extraction(extraction);
            let r = tuner.tune(&ctx, &req);
            assert!(r.calls_used <= 150, "{}", tuner.name());
            assert!(r.config.len() <= 5, "{}", tuner.name());
            assert!(r.improvement >= 0.0);
        }
    }

    #[test]
    fn traced_run_reports_monotone_best_so_far() {
        let (opt, cands) = tpch_ctx();
        let ctx = TuningContext::new(&opt, &cands);
        let req = TuningRequest::cardinality(5, 150).with_seed(2);
        let (r, trace) = MctsTuner::default().tune_traced(&ctx, &req);
        assert!(!trace.is_empty());
        assert!(trace.windows(2).all(|w| w[1] >= w[0] - 1e-12));
        assert!(r.calls_used <= 150);
        // The trace tracks estimated improvements in [0, 1].
        assert!(trace.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn query_selection_strategies_produce_usable_priors_on_tpch() {
        let (opt, cands) = tpch_ctx();
        let ctx = TuningContext::new(&opt, &cands);
        for strategy in [
            QuerySelection::RoundRobin,
            QuerySelection::CostWeighted,
            QuerySelection::RandomSubset { per_mille: 300 },
        ] {
            let mut mw = crate::budget::MeteredWhatIf::new(&opt, 300);
            let priors = priors::compute_priors(&ctx, &mut mw, 150, strategy);
            assert!(
                priors.iter().any(|&p| p > 0.0),
                "{}: no useful priors",
                strategy.label()
            );
            assert!(mw.meter().used() <= 150);
        }
    }

    #[test]
    fn names_and_labels() {
        assert_eq!(MctsTuner::default().name(), "MCTS");
        let t = MctsTuner::default()
            .with_selection(SelectionPolicy::uct())
            .with_rollout(RolloutPolicy::RandomStep)
            .with_extraction(Extraction::Bce);
        assert_eq!(t.ablation_label(), "UCT Only");
        assert!(t.name().contains("UCT"));
        let d = MctsTuner::default();
        assert_eq!(d.ablation_label(), "Prior + Greedy");
    }

    #[test]
    fn root_parallel_respects_budget_and_is_thread_invariant() {
        let (opt, cands) = setup(8);
        let ctx = TuningContext::new(&opt, &cands);
        let tuner = MctsTuner::default().with_root_workers(4);
        let base = TuningRequest::cardinality(3, 60).with_seed(11);
        let serial = tuner.tune(&ctx, &base.with_session_threads(1));
        let parallel = tuner.tune(&ctx, &base.with_session_threads(4));
        assert!(serial.calls_used <= 60, "budget oversubscribed");
        assert_eq!(serial.config, parallel.config);
        assert_eq!(serial.calls_used, parallel.calls_used);
        assert_eq!(serial.improvement.to_bits(), parallel.improvement.to_bits());
        assert_eq!(serial.layout.cells(), parallel.layout.cells());
        assert_eq!(
            serial.telemetry.what_if_calls,
            parallel.telemetry.what_if_calls
        );
        assert_eq!(serial.telemetry.derivations, parallel.telemetry.derivations);
        assert_eq!(serial.telemetry.tree_merges, 4);
        assert_eq!(serial.telemetry.reservation_shortfalls, 0);
    }

    #[test]
    fn root_parallel_is_deterministic_and_named() {
        let (opt, cands) = setup(9);
        let ctx = TuningContext::new(&opt, &cands);
        let tuner = MctsTuner::default().with_root_workers(3);
        assert!(tuner.name().contains("W=3"), "{}", tuner.name());
        let req = TuningRequest::cardinality(3, 40).with_seed(5);
        let a = tuner.tune(&ctx, &req);
        let b = tuner.tune(&ctx, &req);
        assert_eq!(a.config, b.config);
        assert_eq!(a.calls_used, b.calls_used);
        // Worker RNG streams are split from the seed, so a different seed
        // steers the search differently (streams are live, not constant).
        let c = tuner.tune(&ctx, &req.with_seed(6));
        assert!(c.calls_used <= 40);
    }

    #[test]
    fn root_parallel_with_tight_budget_degrades_gracefully() {
        let (opt, cands) = setup(10);
        let ctx = TuningContext::new(&opt, &cands);
        let tuner = MctsTuner::default().with_root_workers(8);
        // Fewer remaining calls than workers: trailing shares are 0.
        for budget in [0usize, 1, 3, 7] {
            let r = tuner.tune(&ctx, &TuningRequest::cardinality(2, budget).with_seed(2));
            assert!(r.calls_used <= budget, "budget {budget}");
            assert_eq!(r.telemetry.reservation_shortfalls, 0);
        }
    }

    #[test]
    fn storage_constraint_respected() {
        let (opt, cands) = tpch_ctx();
        let ctx = TuningContext::new(&opt, &cands);
        // Limit to ~one small index worth of bytes.
        let limit = 50 * 1024 * 1024;
        let req = TuningRequest::new(Constraints::with_storage(10, limit), 150).with_seed(2);
        let r = MctsTuner::default().tune(&ctx, &req);
        assert!(opt.config_size_bytes(&r.config) <= limit);
    }
}
