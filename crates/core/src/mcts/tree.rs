//! The MCTS search tree.
//!
//! Nodes are states of the configuration-search MDP (§5.1): each node's
//! state is an index configuration; each outgoing edge is an action (the
//! next index to add). Nodes keep visit counts `N(s)` and per-action
//! statistics `n(s,a)`, `Q̂(s,a)` — the running average of episode rewards.

use ixtune_common::{IndexId, IndexSet};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Running statistics for one action at one node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ActionStats {
    /// `n(s, a)`: times the action was taken from this node.
    pub n: u32,
    /// `Q̂(s, a)`: average episode reward after taking the action.
    pub q: f64,
}

/// One node of the search tree.
#[derive(Clone, Debug)]
pub struct Node {
    /// The configuration this state represents.
    pub config: IndexSet,
    /// Whether an episode has already evaluated this node (controls
    /// expansion versus rollout in Algorithm 3's `SampleConfiguration`).
    pub visited: bool,
    /// `N(s)`: number of episodes that passed through this node.
    pub n_visits: u32,
    /// Expanded children: action → node index.
    pub children: HashMap<IndexId, usize>,
    /// Statistics for actions taken at least once.
    pub actions: HashMap<IndexId, ActionStats>,
}

impl Node {
    fn new(config: IndexSet) -> Self {
        Self {
            config,
            visited: false,
            n_visits: 0,
            children: HashMap::new(),
            actions: HashMap::new(),
        }
    }

    /// `Q̂(s, a)` if the action has been taken, else `None`.
    pub fn q_value(&self, a: IndexId) -> Option<f64> {
        self.actions.get(&a).map(|s| s.q)
    }

    /// `n(s, a)`.
    pub fn action_visits(&self, a: IndexId) -> u32 {
        self.actions.get(&a).map_or(0, |s| s.n)
    }

    /// Depth of the state in the tree = configuration size.
    pub fn depth(&self) -> usize {
        self.config.len()
    }
}

/// Arena-allocated search tree rooted at the empty configuration.
#[derive(Clone, Debug)]
pub struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    /// Create a tree whose root is the empty configuration over `universe`.
    pub fn new(universe: usize) -> Self {
        Self {
            nodes: vec![Node::new(IndexSet::empty(universe))],
        }
    }

    pub const ROOT: usize = 0;

    pub fn node(&self, i: usize) -> &Node {
        &self.nodes[i]
    }

    pub fn node_mut(&mut self, i: usize) -> &mut Node {
        &mut self.nodes[i]
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// `GetOrCreateNextState` of Algorithm 3: the child of `node` reached by
    /// `action`, created (expansion) if absent.
    pub fn get_or_create_child(&mut self, node: usize, action: IndexId) -> usize {
        if let Some(&c) = self.nodes[node].children.get(&action) {
            return c;
        }
        let config = self.nodes[node].config.with(action);
        let child = self.nodes.len();
        self.nodes.push(Node::new(config));
        self.nodes[node].children.insert(action, child);
        child
    }

    /// Back up an episode reward along `path` (pairs of node index and the
    /// action taken there) plus the terminal node reached.
    pub fn update_path(&mut self, path: &[(usize, IndexId)], terminal: usize, reward: f64) {
        for &(node, action) in path {
            let n = &mut self.nodes[node];
            n.n_visits += 1;
            let stats = n.actions.entry(action).or_default();
            stats.n += 1;
            stats.q += (reward - stats.q) / stats.n as f64;
        }
        let t = &mut self.nodes[terminal];
        t.n_visits += 1;
        t.visited = true;
    }

    /// Iterate all node configurations (used by Best-Configuration-Explored).
    pub fn configs(&self) -> impl Iterator<Item = &IndexSet> {
        self.nodes.iter().map(|n| &n.config)
    }

    /// Merge another tree's statistics into this one (root-parallel MCTS):
    /// visit counts add, `visited` flags or together, and per-action `Q̂`
    /// values combine as visit-weighted averages. Nodes missing here are
    /// created on demand. Actions and children are walked in sorted
    /// `IndexId` order so the merged arena's node numbering — and every
    /// `f64` combination — is independent of `HashMap` iteration order.
    pub fn merge_from(&mut self, other: &Tree) {
        self.merge_node(Tree::ROOT, other, Tree::ROOT);
    }

    /// Serializable image for checkpoint/resume. Nodes are captured in
    /// arena order, children/actions in sorted `IndexId` order; restoring
    /// reproduces the arena *indices* exactly, so a resumed search that
    /// expands the same actions assigns the same node numbers as the
    /// uninterrupted run (the determinism invariant depends on it — node
    /// ids never feed tie-breaks, but cheap paranoia here keeps the
    /// restored tree byte-comparable).
    pub fn snapshot(&self) -> TreeSnapshot {
        let nodes = self
            .nodes
            .iter()
            .map(|n| {
                let mut children: Vec<(IndexId, usize)> =
                    n.children.iter().map(|(&a, &c)| (a, c)).collect();
                children.sort_unstable_by_key(|&(a, _)| a);
                let mut actions: Vec<(IndexId, ActionStats)> =
                    n.actions.iter().map(|(&a, &s)| (a, s)).collect();
                actions.sort_unstable_by_key(|&(a, _)| a);
                NodeSnapshot {
                    config: n.config.clone(),
                    visited: n.visited,
                    n_visits: n.n_visits,
                    children,
                    actions,
                }
            })
            .collect();
        TreeSnapshot { nodes }
    }

    /// Rebuild a tree from a [`snapshot`](Self::snapshot), preserving the
    /// arena node numbering.
    pub fn from_snapshot(s: &TreeSnapshot) -> Result<Tree, String> {
        if s.nodes.is_empty() {
            return Err("tree snapshot has no root".to_string());
        }
        if !s.nodes[Tree::ROOT].config.is_empty() {
            return Err("tree snapshot root is not the empty configuration".to_string());
        }
        let len = s.nodes.len();
        let nodes = s
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                for &(_, c) in &n.children {
                    if c >= len {
                        return Err(format!("node {i} links to out-of-range child {c}"));
                    }
                }
                Ok(Node {
                    config: n.config.clone(),
                    visited: n.visited,
                    n_visits: n.n_visits,
                    children: n.children.iter().copied().collect(),
                    actions: n.actions.iter().copied().collect(),
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Tree { nodes })
    }

    fn merge_node(&mut self, into: usize, other: &Tree, from: usize) {
        let src = other.node(from);
        debug_assert_eq!(self.nodes[into].config, src.config);
        self.nodes[into].n_visits += src.n_visits;
        self.nodes[into].visited |= src.visited;

        let mut actions: Vec<IndexId> = src.actions.keys().copied().collect();
        actions.sort_unstable();
        for a in actions {
            let st = src.actions[&a];
            let e = self.nodes[into].actions.entry(a).or_default();
            let n = e.n + st.n;
            if n > 0 {
                e.q = (e.q * e.n as f64 + st.q * st.n as f64) / n as f64;
            }
            e.n = n;
        }

        let mut children: Vec<IndexId> = src.children.keys().copied().collect();
        children.sort_unstable();
        for a in children {
            let from_child = src.children[&a];
            let into_child = self.get_or_create_child(into, a);
            self.merge_node(into_child, other, from_child);
        }
    }
}

/// On-disk image of a [`Tree`] (see [`Tree::snapshot`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TreeSnapshot {
    nodes: Vec<NodeSnapshot>,
}

impl TreeSnapshot {
    /// Number of nodes in the snapshotted arena.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct NodeSnapshot {
    config: IndexSet,
    visited: bool,
    n_visits: u32,
    children: Vec<(IndexId, usize)>,
    actions: Vec<(IndexId, ActionStats)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: u32) -> IndexId {
        IndexId::new(i)
    }

    #[test]
    fn root_is_empty_config() {
        let t = Tree::new(8);
        assert_eq!(t.len(), 1);
        assert!(t.node(Tree::ROOT).config.is_empty());
        assert!(!t.node(Tree::ROOT).visited);
    }

    #[test]
    fn child_creation_is_idempotent() {
        let mut t = Tree::new(8);
        let a = t.get_or_create_child(Tree::ROOT, id(3));
        let b = t.get_or_create_child(Tree::ROOT, id(3));
        assert_eq!(a, b);
        assert_eq!(t.len(), 2);
        assert!(t.node(a).config.contains(id(3)));
        assert_eq!(t.node(a).depth(), 1);
    }

    #[test]
    fn update_path_averages_rewards() {
        let mut t = Tree::new(8);
        let c1 = t.get_or_create_child(Tree::ROOT, id(0));
        t.update_path(&[(Tree::ROOT, id(0))], c1, 0.4);
        t.update_path(&[(Tree::ROOT, id(0))], c1, 0.8);
        let root = t.node(Tree::ROOT);
        assert_eq!(root.n_visits, 2);
        assert_eq!(root.action_visits(id(0)), 2);
        assert!((root.q_value(id(0)).unwrap() - 0.6).abs() < 1e-12);
        assert!(t.node(c1).visited);
        assert_eq!(t.node(c1).n_visits, 2);
    }

    #[test]
    fn deeper_paths_update_every_edge() {
        let mut t = Tree::new(8);
        let c1 = t.get_or_create_child(Tree::ROOT, id(0));
        let c2 = t.get_or_create_child(c1, id(1));
        t.update_path(&[(Tree::ROOT, id(0)), (c1, id(1))], c2, 1.0);
        assert_eq!(t.node(Tree::ROOT).action_visits(id(0)), 1);
        assert_eq!(t.node(c1).action_visits(id(1)), 1);
        assert_eq!(t.node(c2).n_visits, 1);
        assert_eq!(t.node(c2).config.len(), 2);
    }

    #[test]
    fn merge_sums_visits_and_weights_q() {
        let mut a = Tree::new(8);
        let a1 = a.get_or_create_child(Tree::ROOT, id(0));
        a.update_path(&[(Tree::ROOT, id(0))], a1, 0.2);

        let mut b = Tree::new(8);
        let b1 = b.get_or_create_child(Tree::ROOT, id(0));
        b.update_path(&[(Tree::ROOT, id(0))], b1, 0.8);
        let b2 = b.get_or_create_child(b1, id(3));
        b.update_path(&[(Tree::ROOT, id(0)), (b1, id(3))], b2, 1.0);

        a.merge_from(&b);
        let root = a.node(Tree::ROOT);
        assert_eq!(root.n_visits, 3);
        assert_eq!(root.action_visits(id(0)), 3);
        // Weighted average of 1×0.2 and 2×avg(0.8, 1.0).
        let expect = (0.2 + 0.8 + 1.0) / 3.0;
        assert!((root.q_value(id(0)).unwrap() - expect).abs() < 1e-12);
        // The deep child from `b` was created here with its stats.
        let m1 = a.node(a1);
        assert_eq!(m1.action_visits(id(3)), 1);
        let &m2 = m1.children.get(&id(3)).unwrap();
        assert!(a.node(m2).visited);
        assert_eq!(a.node(m2).config.len(), 2);
    }

    #[test]
    fn merge_into_empty_replicates_source() {
        let mut src = Tree::new(6);
        let c1 = src.get_or_create_child(Tree::ROOT, id(2));
        src.update_path(&[(Tree::ROOT, id(2))], c1, 0.5);
        let mut dst = Tree::new(6);
        dst.merge_from(&src);
        assert_eq!(dst.len(), src.len());
        assert_eq!(dst.node(Tree::ROOT).n_visits, 1);
        assert_eq!(
            dst.node(Tree::ROOT).q_value(id(2)).unwrap().to_bits(),
            src.node(Tree::ROOT).q_value(id(2)).unwrap().to_bits()
        );
    }

    #[test]
    fn snapshot_roundtrip_preserves_arena_and_stats() {
        let mut t = Tree::new(8);
        let c1 = t.get_or_create_child(Tree::ROOT, id(0));
        let c2 = t.get_or_create_child(c1, id(3));
        let c3 = t.get_or_create_child(Tree::ROOT, id(5));
        t.update_path(&[(Tree::ROOT, id(0)), (c1, id(3))], c2, 0.7);
        t.update_path(&[(Tree::ROOT, id(5))], c3, 0.3);

        let snap = t.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: TreeSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap, "snapshot survives JSON");
        let r = Tree::from_snapshot(&back).unwrap();

        assert_eq!(r.len(), t.len());
        for i in 0..t.len() {
            let (a, b) = (t.node(i), r.node(i));
            assert_eq!(a.config, b.config, "node {i}");
            assert_eq!(a.visited, b.visited);
            assert_eq!(a.n_visits, b.n_visits);
            assert_eq!(a.children, b.children);
            assert_eq!(a.actions.len(), b.actions.len());
            for (act, st) in &a.actions {
                let rs = b.actions[act];
                assert_eq!(st.n, rs.n);
                assert_eq!(st.q.to_bits(), rs.q.to_bits());
            }
        }
    }

    #[test]
    fn from_snapshot_rejects_dangling_children() {
        let mut t = Tree::new(4);
        t.get_or_create_child(Tree::ROOT, id(1));
        let mut snap = t.snapshot();
        snap.nodes[0].children[0].1 = 99;
        assert!(Tree::from_snapshot(&snap).is_err());
        snap.nodes.clear();
        assert!(Tree::from_snapshot(&snap).is_err());
    }

    #[test]
    fn unvisited_action_has_no_q() {
        let t = Tree::new(4);
        assert_eq!(t.node(Tree::ROOT).q_value(id(2)), None);
        assert_eq!(t.node(Tree::ROOT).action_visits(id(2)), 0);
    }
}
