//! Rollout policies (§6.2 of the paper).
//!
//! After reaching an unvisited leaf, MCTS completes the episode by randomly
//! inserting indexes. The paper's standard policy draws a look-ahead step
//! size `l ∈ {0, 1, …, K − d}` uniformly; the *myopic* variant fixes `l`
//! (step 0 — evaluate the leaf itself — is the setting that performed best
//! together with Best-Greedy extraction). Index choice is uniform under
//! UCT and prior-proportional under ε-greedy.

use crate::mcts::policy::SelectionPolicy;
use crate::tuner::{Constraints, TuningContext};
use ixtune_common::rng::weighted_choice;
use ixtune_common::{IndexId, IndexSet};
use rand::prelude::IndexedRandom;
use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Rollout step-size policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RolloutPolicy {
    /// `l ~ Uniform{0, …, K − d}` (the standard, unbiased policy).
    RandomStep,
    /// Fixed (myopic) step size.
    FixedStep(usize),
}

impl RolloutPolicy {
    /// Label used in the ablation figures.
    pub fn label(&self) -> String {
        match self {
            RolloutPolicy::RandomStep => "random-step".into(),
            RolloutPolicy::FixedStep(l) => format!("fixed-step({l})"),
        }
    }

    /// Run a rollout from `config` (at depth `d = |config|`): sample the
    /// step size, then insert that many admissible indexes chosen per the
    /// action-selection flavor.
    pub fn rollout(
        &self,
        ctx: &TuningContext<'_>,
        constraints: &Constraints,
        selection: &SelectionPolicy,
        priors: &[f64],
        config: &IndexSet,
        rng: &mut StdRng,
    ) -> IndexSet {
        let depth = config.len();
        let max_step = constraints.k.saturating_sub(depth);
        let steps = match *self {
            RolloutPolicy::RandomStep => {
                if max_step == 0 {
                    0
                } else {
                    rng.random_range(0..=max_step)
                }
            }
            RolloutPolicy::FixedStep(l) => l.min(max_step),
        };

        let mut out = config.clone();
        // Action and weight buffers are reused across rollout steps.
        let mut actions: Vec<IndexId> = Vec::new();
        let mut weights: Vec<f64> = Vec::new();
        for _ in 0..steps {
            let filter = constraints.extension_filter(ctx, &out);
            actions.clear();
            actions.extend(out.complement_iter().filter(|&a| filter.admits(ctx, a)));
            if actions.is_empty() {
                break;
            }
            let pick = if selection.uses_priors() {
                weights.clear();
                weights.extend(
                    actions
                        .iter()
                        .map(|a| priors.get(a.index()).copied().unwrap_or(0.0).max(0.0)),
                );
                weighted_choice(rng, &weights).map(|i| actions[i])
            } else {
                actions.choose(rng).copied()
            };
            match pick {
                Some(a) => {
                    out.insert(a);
                }
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixtune_candidates::{generate_default, CandidateSet};
    use ixtune_common::rng::seeded;
    use ixtune_optimizer::{CostModel, SimulatedOptimizer};
    use ixtune_workload::gen::synth;

    fn setup(seed: u64) -> (SimulatedOptimizer, CandidateSet) {
        let inst = synth::instance(seed);
        let cands = generate_default(&inst);
        let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
        (opt, cands)
    }

    #[test]
    fn fixed_step_zero_returns_input() {
        let (opt, cands) = setup(1);
        let ctx = TuningContext::new(&opt, &cands);
        let c = Constraints::cardinality(5);
        let cfg = IndexSet::singleton(ctx.universe(), IndexId::new(0));
        let mut rng = seeded(1);
        let out = RolloutPolicy::FixedStep(0).rollout(
            &ctx,
            &c,
            &SelectionPolicy::uct(),
            &[],
            &cfg,
            &mut rng,
        );
        assert_eq!(out, cfg);
    }

    #[test]
    fn fixed_step_adds_exactly_l_when_possible() {
        let (opt, cands) = setup(2);
        let ctx = TuningContext::new(&opt, &cands);
        assert!(ctx.universe() >= 4);
        let c = Constraints::cardinality(4);
        let cfg = IndexSet::empty(ctx.universe());
        let mut rng = seeded(2);
        let out = RolloutPolicy::FixedStep(2).rollout(
            &ctx,
            &c,
            &SelectionPolicy::uct(),
            &[],
            &cfg,
            &mut rng,
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn random_step_respects_cardinality() {
        let (opt, cands) = setup(3);
        let ctx = TuningContext::new(&opt, &cands);
        let k = 3;
        let c = Constraints::cardinality(k);
        let mut rng = seeded(3);
        for _ in 0..100 {
            let out = RolloutPolicy::RandomStep.rollout(
                &ctx,
                &c,
                &SelectionPolicy::uct(),
                &[],
                &IndexSet::empty(ctx.universe()),
                &mut rng,
            );
            assert!(out.len() <= k);
        }
    }

    #[test]
    fn rollout_from_full_depth_is_identity() {
        let (opt, cands) = setup(4);
        let ctx = TuningContext::new(&opt, &cands);
        let n = ctx.universe();
        assert!(n >= 2);
        let c = Constraints::cardinality(2);
        let cfg = IndexSet::from_ids(n, [IndexId::new(0), IndexId::new(1)]);
        let mut rng = seeded(4);
        let out = RolloutPolicy::RandomStep.rollout(
            &ctx,
            &c,
            &SelectionPolicy::uct(),
            &[],
            &cfg,
            &mut rng,
        );
        assert_eq!(out, cfg);
    }

    #[test]
    fn prior_weighted_rollout_prefers_high_prior_indexes() {
        let (opt, cands) = setup(5);
        let ctx = TuningContext::new(&opt, &cands);
        let n = ctx.universe();
        assert!(n >= 3);
        let mut priors = vec![0.0; n];
        priors[1] = 0.9;
        let c = Constraints::cardinality(1);
        let mut rng = seeded(5);
        for _ in 0..30 {
            let out = RolloutPolicy::FixedStep(1).rollout(
                &ctx,
                &c,
                &SelectionPolicy::EpsilonGreedyPrior,
                &priors,
                &IndexSet::empty(n),
                &mut rng,
            );
            assert!(out.contains(IndexId::new(1)), "only positive-prior index");
        }
    }

    #[test]
    fn labels() {
        assert_eq!(RolloutPolicy::RandomStep.label(), "random-step");
        assert_eq!(RolloutPolicy::FixedStep(0).label(), "fixed-step(0)");
    }
}
