//! Extraction of the best configuration from the search tree (§6.3).
//!
//! * **BCE** (Best-Configuration-Explored): return the best configuration
//!   evaluated during the episodes (tree states and rollout samples).
//! * **BG** (Best-Greedy): re-run Algorithm 1 over the candidate universe
//!   using only derived costs — zero extra budget. This is the paper's
//!   recommended strategy (it reuses Algorithm 1, inherits Theorems 2–3,
//!   and dominated BCE in their evaluation).
//! * **Hybrid**: take whichever of the two has the lower derived cost (the
//!   mitigation discussed in the ablation appendix).

use crate::derivation_state::DerivationState;
use crate::derived::WhatIfCache;
use crate::parallel::{frozen_argmin, FrozenEval, MIN_PARALLEL_WORK};
use crate::tuner::{Constraints, TuningContext};
use ixtune_common::{IndexId, IndexSet};
use serde::{Deserialize, Serialize};

/// Extraction strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Extraction {
    /// Best configuration explored during search.
    Bce,
    /// Greedy traversal with derived costs (the paper's BG).
    BestGreedy,
    /// The better of BCE and BG under derived cost.
    Hybrid,
    /// §6.3's tree-walk alternative: descend the search tree picking the
    /// action that maximizes the estimated average return `Q̂(s, a)`.
    TreeByValue,
    /// §6.3's other tree-walk alternative: descend picking the most
    /// frequently taken action `argmax n(s, a)`.
    TreeByVisits,
}

impl Extraction {
    /// Label used in the ablation figures ("Only" vs "+ Greedy").
    pub fn label(&self) -> &'static str {
        match self {
            Extraction::Bce => "BCE",
            Extraction::BestGreedy => "BG",
            Extraction::Hybrid => "Hybrid",
            Extraction::TreeByValue => "Tree(Q)",
            Extraction::TreeByVisits => "Tree(n)",
        }
    }

    /// Extract the final configuration.
    ///
    /// `best_explored` is the best (configuration, estimated cost) pair
    /// tracked during the episodes; `cache` provides derived costs; `tree`
    /// is the expanded search tree (used by the tree-walk strategies).
    /// `threads` is the logical thread count for the Best-Greedy scan —
    /// results are bit-identical for every value.
    pub fn extract(
        &self,
        ctx: &TuningContext<'_>,
        constraints: &Constraints,
        cache: &WhatIfCache,
        tree: &crate::mcts::tree::Tree,
        best_explored: Option<&IndexSet>,
        threads: usize,
    ) -> IndexSet {
        let empty = IndexSet::empty(ctx.universe());
        let bce = || best_explored.cloned().unwrap_or_else(|| empty.clone());
        let bg = || best_greedy(ctx, constraints, cache, threads);
        match self {
            Extraction::Bce => bce(),
            Extraction::BestGreedy => bg(),
            Extraction::Hybrid => {
                let a = bce();
                let b = bg();
                if cache.derived_workload(&a) <= cache.derived_workload(&b) {
                    a
                } else {
                    b
                }
            }
            Extraction::TreeByValue => tree_walk(ctx, constraints, tree, true),
            Extraction::TreeByVisits => tree_walk(ctx, constraints, tree, false),
        }
    }
}

/// §6.3's tree-walk extraction: descend from the root picking, at each
/// node, the admissible action maximizing `Q̂(s,a)` (`by_value`) or
/// `n(s,a)` — the configuration of the deepest node reached. As the paper
/// remarks, this is the theoretically optimal policy only if `Q̂` has
/// converged to `Q*`, which under tight budgets it has not.
fn tree_walk(
    ctx: &TuningContext<'_>,
    constraints: &Constraints,
    tree: &crate::mcts::tree::Tree,
    by_value: bool,
) -> IndexSet {
    let mut node = crate::mcts::tree::Tree::ROOT;
    loop {
        let n = tree.node(node);
        if n.config.len() >= constraints.k {
            break;
        }
        let filter = constraints.extension_filter(ctx, &n.config);
        let best = n
            .actions
            .iter()
            .filter(|(a, _)| filter.admits(ctx, **a))
            .max_by(|(a1, s1), (a2, s2)| {
                let (x, y) = if by_value {
                    (s1.q, s2.q)
                } else {
                    (s1.n as f64, s2.n as f64)
                };
                x.total_cmp(&y).then(a2.cmp(a1)) // deterministic ties
            })
            .map(|(a, _)| *a);
        let Some(action) = best else { break };
        let Some(&child) = n.children.get(&action) else {
            break;
        };
        node = child;
    }
    tree.node(node).config.clone()
}

/// Best-Greedy over derived costs, implemented incrementally on a
/// [`DerivationState`]: each candidate is priced with
/// [`DerivationState::probe_extend`] (postings-guided, no mutation, no
/// allocation) and the winner committed with
/// [`DerivationState::commit_recompute`] — identical results to
/// Algorithm 1 over `d(W, C)`, but linear per step.
///
/// Given enough work, each step's candidate scan runs through the
/// frozen-cache kernel ([`frozen_argmin`] in `Derive` mode) — even at
/// `threads == 1`, where it scans one chunk inline: the query-major entry
/// pass prices a whole candidate block per cached entry, beating one
/// postings walk per `(candidate, query)` cell before any parallelism.
/// The kernel prices the same probes with the same telemetry and reduces
/// to the same first-strict-min — the commit stays serial either way.
fn best_greedy(
    ctx: &TuningContext<'_>,
    constraints: &Constraints,
    cache: &WhatIfCache,
    threads: usize,
) -> IndexSet {
    let n = ctx.universe();
    let mut state = DerivationState::workload(cache);
    let mut remaining: Vec<IndexId> = (0..n).map(IndexId::from).collect();

    while !remaining.is_empty() && state.config().len() < constraints.k {
        let filter = constraints.extension_filter(ctx, state.config());
        let batched = remaining.len() * state.queries().len() >= MIN_PARALLEL_WORK;
        let best: Option<(usize, f64)> = if batched {
            // Extraction spends no budget, so the cache is read-only for
            // the rest of the session: latch it and fan the scan out.
            cache.freeze();
            let admissible: Vec<(usize, IndexId)> = remaining
                .iter()
                .enumerate()
                .filter(|&(_, &id)| filter.admits(ctx, id))
                .map(|(pos, &id)| (pos, id))
                .collect();
            let (found, _hits) = frozen_argmin(
                cache,
                state.queries(),
                state.per_query(),
                state.config(),
                &admissible,
                FrozenEval::Derive,
                threads,
                ctx.obs(),
            );
            found.map(|(pos, _, total)| (pos, total))
        } else {
            let mut best: Option<(usize, f64)> = None;
            for (pos, &id) in remaining.iter().enumerate() {
                if !filter.admits(ctx, id) {
                    continue;
                }
                let total = state.probe_extend(cache, id);
                if best.is_none_or(|(_, b)| total < b) {
                    best = Some((pos, total));
                }
            }
            best
        };
        match best {
            Some((pos, total)) if total < state.total() => {
                let id = remaining.swap_remove(pos);
                state.commit_recompute(cache, id);
                debug_assert_eq!(state.total(), total);
            }
            _ => break,
        }
    }
    state.config().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::MeteredWhatIf;
    use crate::mcts::tree::Tree;
    use ixtune_candidates::{generate_default, CandidateSet};
    use ixtune_common::QueryId;
    use ixtune_optimizer::{CostModel, SimulatedOptimizer};
    use ixtune_workload::gen::synth;

    fn setup(seed: u64) -> (SimulatedOptimizer, CandidateSet) {
        let inst = synth::instance(seed);
        let cands = generate_default(&inst);
        let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
        (opt, cands)
    }

    #[test]
    fn bce_returns_tracked_or_empty() {
        let (opt, cands) = setup(1);
        let ctx = TuningContext::new(&opt, &cands);
        let mw = MeteredWhatIf::new(&opt, 0);
        let c = Constraints::cardinality(3);
        let none =
            Extraction::Bce.extract(&ctx, &c, mw.cache(), &Tree::new(ctx.universe()), None, 1);
        assert!(none.is_empty());
        let tracked = IndexSet::singleton(ctx.universe(), IndexId::new(0));
        let got = Extraction::Bce.extract(
            &ctx,
            &c,
            mw.cache(),
            &Tree::new(ctx.universe()),
            Some(&tracked),
            1,
        );
        assert_eq!(got, tracked);
    }

    #[test]
    fn bg_uses_cached_information() {
        let (opt, cands) = setup(2);
        let ctx = TuningContext::new(&opt, &cands);
        let mut mw = MeteredWhatIf::new(&opt, 1_000);
        // Prime the cache with every singleton for every query.
        for q in 0..ctx.num_queries() {
            for i in 0..ctx.universe() {
                mw.what_if(
                    QueryId::from(q),
                    &IndexSet::singleton(ctx.universe(), IndexId::from(i)),
                );
            }
        }
        let c = Constraints::cardinality(3);
        let bg = Extraction::BestGreedy.extract(
            &ctx,
            &c,
            mw.cache(),
            &Tree::new(ctx.universe()),
            None,
            1,
        );
        assert!(bg.len() <= 3);
        // With full singleton information, BG's derived cost is at most the
        // empty cost.
        assert!(mw.derived_workload(&bg) <= mw.empty_workload_cost());
    }

    #[test]
    fn bg_with_no_information_returns_empty() {
        let (opt, cands) = setup(3);
        let ctx = TuningContext::new(&opt, &cands);
        let mw = MeteredWhatIf::new(&opt, 0);
        let c = Constraints::cardinality(3);
        let bg = Extraction::BestGreedy.extract(
            &ctx,
            &c,
            mw.cache(),
            &Tree::new(ctx.universe()),
            None,
            1,
        );
        assert!(bg.is_empty(), "no cache entries → nothing beats ∅");
    }

    #[test]
    fn hybrid_picks_the_cheaper() {
        let (opt, cands) = setup(4);
        let ctx = TuningContext::new(&opt, &cands);
        let mut mw = MeteredWhatIf::new(&opt, 1_000);
        for q in 0..ctx.num_queries() {
            for i in 0..ctx.universe() {
                mw.what_if(
                    QueryId::from(q),
                    &IndexSet::singleton(ctx.universe(), IndexId::from(i)),
                );
            }
        }
        let c = Constraints::cardinality(3);
        let tracked = IndexSet::singleton(ctx.universe(), IndexId::new(0));
        let h = Extraction::Hybrid.extract(
            &ctx,
            &c,
            mw.cache(),
            &Tree::new(ctx.universe()),
            Some(&tracked),
            1,
        );
        let bce_cost = mw.derived_workload(&tracked);
        let bg = Extraction::BestGreedy.extract(
            &ctx,
            &c,
            mw.cache(),
            &Tree::new(ctx.universe()),
            None,
            1,
        );
        let bg_cost = mw.derived_workload(&bg);
        assert!(mw.derived_workload(&h) <= bce_cost.min(bg_cost) + 1e-9);
    }

    #[test]
    fn fast_bg_matches_naive_greedy_over_derived_costs() {
        use crate::greedy::greedy_enumerate;
        for seed in 0..5u64 {
            let (opt, cands) = setup(seed + 40);
            let ctx = TuningContext::new(&opt, &cands);
            let mut mw = MeteredWhatIf::new(&opt, 60);
            // Populate a mixed cache: singletons and a few pairs.
            let n = ctx.universe();
            let mut rng = ixtune_common::rng::seeded(seed);
            use rand::RngExt;
            while !mw.meter().exhausted() {
                let a = IndexId::from(rng.random_range(0..n));
                let b = IndexId::from(rng.random_range(0..n));
                let q = QueryId::from(rng.random_range(0..ctx.num_queries()));
                let cfg = if rng.random::<bool>() {
                    IndexSet::singleton(n, a)
                } else {
                    IndexSet::from_ids(n, [a, b])
                };
                mw.what_if(q, &cfg);
            }
            let c = Constraints::cardinality(4);
            let fast = best_greedy(&ctx, &c, mw.cache(), 1);
            let pool: Vec<IndexId> = (0..n).map(IndexId::from).collect();
            let naive = greedy_enumerate(&ctx, &c, &pool, |cfg| mw.derived_workload(cfg));
            assert_eq!(
                mw.derived_workload(&fast),
                mw.derived_workload(&naive),
                "seed {seed}: fast BG must match Algorithm 1 over derived costs"
            );
        }
    }

    #[test]
    fn parallel_bg_matches_serial_bit_for_bit() {
        for seed in 0..4u64 {
            let (opt, cands) = setup(seed + 60);
            let ctx = TuningContext::new(&opt, &cands);
            let mut mw = MeteredWhatIf::new(&opt, 80);
            let n = ctx.universe();
            let mut rng = ixtune_common::rng::seeded(seed ^ 0x517);
            use rand::RngExt;
            while !mw.meter().exhausted() {
                let a = IndexId::from(rng.random_range(0..n));
                let b = IndexId::from(rng.random_range(0..n));
                let q = QueryId::from(rng.random_range(0..ctx.num_queries()));
                let cfg = if rng.random::<bool>() {
                    IndexSet::singleton(n, a)
                } else {
                    IndexSet::from_ids(n, [a, b])
                };
                mw.what_if(q, &cfg);
            }
            let c = Constraints::cardinality(4);
            let serial = best_greedy(&ctx, &c, mw.cache(), 1);
            let par = best_greedy(&ctx, &c, mw.cache(), 4);
            assert_eq!(serial, par, "seed {seed}: BG must be thread-invariant");
            assert_eq!(
                mw.cache().derived_workload(&serial).to_bits(),
                mw.cache().derived_workload(&par).to_bits()
            );
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Extraction::Bce.label(), "BCE");
        assert_eq!(Extraction::BestGreedy.label(), "BG");
        assert_eq!(Extraction::Hybrid.label(), "Hybrid");
    }
}
