//! Budget-aware index configuration enumeration — the core of the paper.
//!
//! * [`derived`] — what-if cache and cost derivation (Eq. 1 / Eq. 2);
//! * [`derivation_state`] — incremental workload-level derivation used by
//!   every enumerator's inner loop;
//! * [`source`] — the [`CostSource`] trait: the single cost-asking API
//!   the meter charges against, with an optional observation hook;
//! * [`budget`] — the budget meter and the tuner-side metered what-if
//!   client;
//! * [`obs`] — the per-session observability handle: metric instruments
//!   and tracing spans, zero-cost when disabled;
//! * [`telemetry`] — the versioned telemetry schema (v2) and the v1
//!   sidecar reader;
//! * [`matrix`] — budget-allocation-matrix layouts (§3.2);
//! * [`tuner`] — the [`Tuner`] trait, contexts, constraints, and
//!   oracle-evaluated results;
//! * [`greedy`] / [`twophase`] / [`autoadmin`] — the budget-aware greedy
//!   variants of §4.2;
//! * [`mcts`] — the MCTS tuner of §5–6 with its selection, rollout, and
//!   extraction policies;
//! * [`parallel`] — the frozen-cache parallel candidate-scan kernel
//!   (deterministic to the bit; see DESIGN.md §5c);
//! * [`stop`] — cooperative interruption: cancel flags, deadlines, and
//!   suspend requests polled at enumeration-step / episode boundaries;
//! * [`checkpoint`] — versioned snapshots of suspended MCTS sessions that
//!   resume bit-identically (see DESIGN.md §6);
//! * [`warm`] — the daemon-wide warm cost store: cross-session reuse of
//!   what-if answers via epoch-published snapshots (see DESIGN.md §8).
//!
//! # Example
//!
//! ```
//! use ixtune_core::prelude::*;
//! use ixtune_candidates::generate_default;
//! use ixtune_optimizer::{CostModel, SimulatedOptimizer};
//! use ixtune_workload::gen::synth;
//!
//! let inst = synth::instance(42);
//! let cands = generate_default(&inst);
//! let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
//! let ctx = TuningContext::new(&opt, &cands);
//!
//! let req = TuningRequest::cardinality(3, 50).with_seed(1);
//! let result = MctsTuner::default().tune(&ctx, &req);
//! assert!(result.calls_used <= 50);
//! assert!(result.config.len() <= 3);
//! ```

pub mod autoadmin;
pub mod budget;
pub mod checkpoint;
pub mod derivation_state;
pub mod derived;
pub mod greedy;
pub mod matrix;
pub mod mcts;
pub mod obs;
pub mod parallel;
pub mod source;
pub mod stop;
pub mod telemetry;
pub mod tuner;
pub mod twophase;
pub mod warm;

pub use autoadmin::AutoAdminGreedy;
pub use budget::{BudgetMeter, MeteredWhatIf, Phase, SessionTelemetry};
pub use checkpoint::{MctsCheckpoint, SNAPSHOT_VERSION};
pub use derivation_state::DerivationState;
pub use derived::{CacheSnapshot, WhatIfCache};
pub use greedy::{greedy_enumerate, greedy_enumerate_incremental, VanillaGreedy};
pub use matrix::Layout;
pub use mcts::extract::Extraction;
pub use mcts::policy::{AmafTable, SelectionPolicy};
pub use mcts::priors::QuerySelection;
pub use mcts::rollout::RolloutPolicy;
pub use mcts::tree::TreeSnapshot;
pub use mcts::{MctsOutcome, MctsTuner, UpdatePolicy};
pub use obs::{publish_cache_hit_ratios, Obs, METRIC_SHARDS};
pub use parallel::{frozen_argmin, winner_values, FrozenEval, MIN_PARALLEL_WORK};
pub use source::{CostSource, ObservedSource, SessionFaults};
pub use stop::{Interrupt, Progress, StopReason, StopSignal};
pub use telemetry::{TelemetryV2, TELEMETRY_VERSION};
pub use tuner::{Constraints, Tuner, TuningContext, TuningRequest, TuningResult};
pub use twophase::TwoPhaseGreedy;
pub use warm::{WarmSnapshot, WarmState, WarmStore, WarmStoreStats};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::autoadmin::AutoAdminGreedy;
    pub use crate::budget::{BudgetMeter, MeteredWhatIf, Phase, SessionTelemetry};
    pub use crate::greedy::VanillaGreedy;
    pub use crate::mcts::extract::Extraction;
    pub use crate::mcts::policy::SelectionPolicy;
    pub use crate::mcts::priors::QuerySelection;
    pub use crate::mcts::rollout::RolloutPolicy;
    pub use crate::mcts::{MctsOutcome, MctsTuner, UpdatePolicy};
    pub use crate::obs::Obs;
    // `CostSource` is deliberately NOT in the prelude: its method names
    // mirror `WhatIfOptimizer`'s, so glob-importing both would make every
    // call on a `SimulatedOptimizer` ambiguous. Import it by name
    // (`ixtune_core::CostSource`) where the trait is actually used.
    pub use crate::source::ObservedSource;
    pub use crate::stop::{StopReason, StopSignal};
    pub use crate::telemetry::{TelemetryV2, TELEMETRY_VERSION};
    pub use crate::tuner::{Constraints, Tuner, TuningContext, TuningRequest, TuningResult};
    pub use crate::twophase::TwoPhaseGreedy;
}
