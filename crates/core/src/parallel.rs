//! Frozen-cache parallel candidate scanning.
//!
//! Once the what-if budget is exhausted, a greedy step is a pure function
//! of the (now read-only) [`WhatIfCache`]: score every admissible
//! candidate `x` by `Σ_q d(q, C ∪ {x})` and take the argmin. That work is
//! embarrassingly parallel — the budget bounds optimizer calls, not CPU —
//! and this module fans it out across threads while staying **bit-identical**
//! to the serial scan:
//!
//! * **Batched query-major kernel.** Instead of one postings walk per
//!   `(candidate, query)` pair, each worker makes a single ascending-cost
//!   pass over `multi_entries(q)` per query: an entry credits candidate
//!   `x` iff its members outside `C` are *exactly* `{x}` — precisely the
//!   entries the serial postings walk for `x` would accept — and because
//!   entries are cost-sorted, the first credit is the min. This prices a
//!   whole candidate chunk per entry pass, which is why the kernel beats
//!   the serial scan per-thread before any parallelism.
//! * **Deterministic reduction.** Candidates are split into contiguous
//!   chunks in pool order; each chunk keeps its first strict min, and
//!   chunks are reduced in ascending order with strict `<` — yielding the
//!   same `(cost, position)` argmin as the serial first-strict-min loop,
//!   regardless of thread interleaving.
//! * **Exact telemetry.** Per query, the kernel accounts
//!   `chunk_len − hits` derivations in one batched counter add and
//!   reports hits to the caller — the same counts, call for call, as the
//!   serial evaluators it replaces.
//!
//! Chunk totals are accumulated query-major (ascending `q`), the same
//! `f64` summation order as the serial per-candidate loop, so sums match
//! to the bit, not just to rounding.

use crate::derived::WhatIfCache;
use crate::obs::Obs;
use ixtune_common::sync::available_parallelism;
use ixtune_common::{IndexId, IndexSet, QueryId};
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Parallel candidate scans only engage when the scan is at least this
/// many `(candidate, query)` evaluations — below it, thread setup costs
/// more than it saves (e.g. two-phase's tiny per-query phase-1 scans).
pub const MIN_PARALLEL_WORK: usize = 64;

/// How a frozen-phase scan prices one `(q, C ∪ {x})` cell — each variant
/// replicates one serial evaluator exactly, value *and* telemetry.
#[derive(Clone, Copy)]
pub enum FrozenEval<'a> {
    /// `MeteredWhatIf::cost_fcfs_extend` after exhaustion: cached exact
    /// hit if present (a free cache hit), otherwise Eq. 1 derivation.
    Fcfs,
    /// The AutoAdmin rule: atomic configurations (singletons and the
    /// listed pairs) go through the FCFS path, everything else is priced
    /// by pure derivation without an exact-hit probe.
    Atomic(&'a HashSet<IndexSet>),
    /// Pure incremental derivation (`DerivationState::probe_extend`) —
    /// the Best-Greedy extraction path, which never probes for hits.
    Derive,
}

/// One chunk's scan outcome: the chunk-local `(cost, position, id)`
/// first-strict-min (if any candidate was scanned) and the cache hits
/// observed.
type ChunkOutcome = (Option<(f64, usize, IndexId)>, usize);

/// Scan `chunk` (pool positions + candidate ids, ascending) against every
/// query, returning the chunk argmin and hit count. Derivation counts are
/// batched straight into the cache's per-shard counters.
fn scan_chunk(
    cache: &WhatIfCache,
    queries: &[QueryId],
    per_query: &[f64],
    config: &IndexSet,
    chunk: &[(usize, IndexId)],
    mode: FrozenEval<'_>,
) -> ChunkOutcome {
    let universe = cache.universe();
    // Epoch-stamped scratch: `entry_min[x]` is valid for the current query
    // iff `stamp[x] == epoch`, so per-query resets are O(1), not O(u).
    let mut entry_min = vec![0.0f64; universe];
    let mut stamp = vec![0u32; universe];
    let mut epoch = 0u32;
    let mut totals = vec![0.0f64; chunk.len()];
    // Scratch set for exact-hit probes: `C ∪ {x}` by insert/remove undo.
    let mut cfg = config.clone();
    let cfg_len = config.len() + 1;
    let mut hits = 0usize;

    // Hoisted exact-probe keys: resolve the interned id of `C ∪ {x}` once
    // per candidate (one bitset hash) instead of per `(query, candidate)`
    // cell; per-query probes are then integer lookups. `None` = no query
    // anywhere stored that configuration, so every probe would miss.
    let cand_key: Vec<Option<u32>> = if cfg_len >= 2 && !matches!(mode, FrozenEval::Derive) {
        chunk
            .iter()
            .map(|&(_, id)| {
                cfg.insert(id);
                let k = cache.interned_id(&cfg);
                cfg.remove(id);
                k
            })
            .collect()
    } else {
        Vec::new()
    };

    for (slot, &q) in queries.iter().enumerate() {
        let cur = per_query[slot];
        let singleton = cache.singleton_row(q);
        epoch += 1;

        // Entry pass: ascending cost, so the first entry crediting `x`
        // (members outside C exactly {x}) is its min — later credits
        // cannot improve it and are skipped by the stamp check.
        'entries: for (set, cost) in cache.multi_entries(q) {
            let mut extra = usize::MAX;
            for (bi, (&eb, &cb)) in set.as_blocks().iter().zip(config.as_blocks()).enumerate() {
                let diff = eb & !cb;
                if diff == 0 {
                    continue;
                }
                if extra != usize::MAX || diff & (diff - 1) != 0 {
                    continue 'entries; // ≥ 2 members outside C
                }
                extra = bi * 64 + diff.trailing_zeros() as usize;
            }
            if extra == usize::MAX {
                continue; // entry ⊆ C: no postings walk ever visits it
            }
            if stamp[extra] != epoch {
                stamp[extra] = epoch;
                entry_min[extra] = *cost;
            }
        }

        // Candidate pass: fold this query's value into each chunk total.
        let mut row_hits = 0usize;
        for (ci, &(_, id)) in chunk.iter().enumerate() {
            let x = id.index();
            let derive = || -> f64 {
                let mut best = cur;
                let s = singleton[x];
                if !s.is_nan() && s < best {
                    best = s;
                }
                if stamp[x] == epoch && entry_min[x] < best {
                    best = entry_min[x];
                }
                best
            };
            let fcfs = |row_hits: &mut usize| -> f64 {
                // Replicate `cache.get(q, C ∪ {x})`:
                let hit = if cfg_len == 1 {
                    let s = singleton[x];
                    (!s.is_nan()).then_some(s)
                } else if cfg_len > cache.max_multi_len(q) {
                    None
                } else {
                    cand_key[ci].and_then(|k| cache.exact_get_id(q, k))
                };
                match hit {
                    Some(c) => {
                        *row_hits += 1;
                        c
                    }
                    None => derive(),
                }
            };
            let v = match mode {
                FrozenEval::Fcfs => fcfs(&mut row_hits),
                FrozenEval::Atomic(pairs) => {
                    // Atomic configurations are singletons and listed
                    // (size-2) pairs, so larger scratch sets skip the probe.
                    let atomic = cfg_len <= 1 || {
                        cfg_len == 2 && {
                            cfg.insert(id);
                            let a = pairs.contains(&cfg);
                            cfg.remove(id);
                            a
                        }
                    };
                    if atomic {
                        fcfs(&mut row_hits)
                    } else {
                        derive()
                    }
                }
                FrozenEval::Derive => derive(),
            };
            totals[ci] += v;
        }
        // Serial accounting: every non-hit evaluation was one derivation.
        cache.add_derivations(q, chunk.len() - row_hits);
        hits += row_hits;
    }

    let mut best: Option<(f64, usize, IndexId)> = None;
    for (ci, &(pos, id)) in chunk.iter().enumerate() {
        let t = totals[ci];
        if best.is_none_or(|(b, _, _)| t < b) {
            best = Some((t, pos, id));
        }
    }
    (best, hits)
}

/// Parallel argmin over `admissible` candidates (pool positions + ids in
/// ascending pool order) against a frozen cache. Returns the winning
/// `(position, id, cost)` — bit-identical to the serial first-strict-min
/// scan — and the number of cache hits observed.
///
/// `threads` is the *logical* thread count; the number of OS threads
/// actually spawned is additionally clamped to the hardware (and to the
/// chunk count), which cannot change the result because chunk outcomes
/// are reduced by chunk index, not completion order.
///
/// `obs` records one `scan-chunk` span per chunk when tracing is enabled
/// (pass [`Obs::disabled`] otherwise); observation never touches the
/// scanned values, so it cannot perturb the argmin.
#[allow(clippy::too_many_arguments)] // a free function over borrowed scan state; no natural struct
pub fn frozen_argmin(
    cache: &WhatIfCache,
    queries: &[QueryId],
    per_query: &[f64],
    config: &IndexSet,
    admissible: &[(usize, IndexId)],
    mode: FrozenEval<'_>,
    threads: usize,
    obs: &Obs,
) -> (Option<(usize, IndexId, f64)>, usize) {
    debug_assert!(cache.is_frozen(), "parallel scan over an unfrozen cache");
    if admissible.is_empty() {
        return (None, 0);
    }
    // Sparse pre-filter: candidates no stored entry can inform all price
    // to exactly `cur` for every query, so their scan total is the plain
    // ordered fold of `per_query` — identical for all of them. Only the
    // informed candidates need their cells scanned; the uninformed block
    // is represented by its earliest pool position (first-strict-min ties
    // resolve by position) and its derivation counts are added in batch —
    // the same counts, cell for cell, as scanning them would record (an
    // uninformed cell can never be a cache hit).
    let informed_set = cache.informed_candidates(config);
    let mut informed: Vec<(usize, IndexId)> = Vec::with_capacity(admissible.len());
    let mut uninformed_first: Option<(usize, IndexId)> = None;
    let mut uninformed = 0usize;
    for &(pos, id) in admissible {
        if informed_set.contains(id) {
            informed.push((pos, id));
        } else {
            if uninformed_first.is_none() {
                uninformed_first = Some((pos, id));
            }
            uninformed += 1;
        }
    }
    if uninformed > 0 {
        for &q in queries {
            cache.add_derivations(q, uninformed);
        }
    }
    if informed.is_empty() {
        // Every admissible candidate prices to the fold of `per_query`.
        let total = fold_per_query(per_query);
        return (uninformed_first.map(|(pos, id)| (pos, id, total)), 0);
    }
    // Chunk per OS worker actually available, not per logical thread: the
    // entry pass is per-chunk overhead, and any contiguous ascending
    // chunking reduces to the same argmin, so fewer chunks on a narrow
    // host is free. (`workers <= 1` thus scans one chunk, serially.)
    let worker_cap = threads.max(1).min(available_parallelism()).max(1);
    let chunk_size = informed.len().div_ceil(worker_cap);
    let chunks: Vec<&[(usize, IndexId)]> = informed.chunks(chunk_size).collect();
    let workers = worker_cap.min(chunks.len());

    // Spanned chunk scan: the timing wraps the pure kernel, so tracing can
    // never change what a chunk computes.
    let scan = |i: usize, c: &[(usize, IndexId)]| -> ChunkOutcome {
        let t0 = obs.span_start();
        let out = scan_chunk(cache, queries, per_query, config, c, mode);
        if let Some(t0) = t0 {
            obs.span_end(
                t0,
                "scan-chunk",
                "parallel",
                vec![
                    ("chunk".into(), i.to_string()),
                    ("candidates".into(), c.len().to_string()),
                ],
            );
        }
        out
    };

    let outcomes: Vec<ChunkOutcome> = if workers <= 1 {
        chunks.iter().enumerate().map(|(i, c)| scan(i, c)).collect()
    } else {
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<ChunkOutcome>> = vec![None; chunks.len()];
        let collected = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let chunks = &chunks;
                    let scan = &scan;
                    s.spawn(move |_| {
                        let mut mine = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= chunks.len() {
                                return mine;
                            }
                            mine.push((i, scan(i, chunks[i])));
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("scan worker panicked"))
                .collect::<Vec<_>>()
        })
        .expect("scan scope panicked");
        for (i, outcome) in collected {
            slots[i] = Some(outcome);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every chunk scanned exactly once"))
            .collect()
    };

    // Reduce in chunk order with strict `<`: positions ascend across
    // chunks, so ties keep the earliest position — the serial argmin.
    let mut hits = 0usize;
    let mut best: Option<(f64, usize, IndexId)> = None;
    for (chunk_best, chunk_hits) in outcomes {
        hits += chunk_hits;
        if let Some((t, pos, id)) = chunk_best {
            if best.is_none_or(|(b, _, _)| t < b) {
                best = Some((t, pos, id));
            }
        }
    }
    // Fold the uninformed block back in: its candidates all total the
    // per-query fold, so the serial argmin is "min value, earliest
    // position among equals" across the informed best and the first
    // uninformed position.
    if let Some((upos, uid)) = uninformed_first {
        let t = fold_per_query(per_query);
        if best.is_none_or(|(b, bpos, _)| t < b || (t == b && upos < bpos)) {
            best = Some((t, upos, uid));
        }
    }
    (best.map(|(t, pos, id)| (pos, id, t)), hits)
}

/// The serial scan's candidate total for a candidate no entry informs:
/// `0.0 + v(q_0) + v(q_1) + …` with every `v(q) = per_query[q]` — the
/// exact fold (order and bits) the per-cell loop would compute.
#[inline]
fn fold_per_query(per_query: &[f64]) -> f64 {
    let mut total = 0.0f64;
    for &v in per_query {
        total += v;
    }
    total
}

/// Re-price the scan winner's per-query values (pushing them into `out`
/// in query order) and return their sum — bit-identical to the kernel's
/// winning total. Telemetry-silent: the kernel already accounted every
/// probe, so this uses uncounted derivation.
pub fn winner_values(
    cache: &WhatIfCache,
    queries: &[QueryId],
    per_query: &[f64],
    config: &IndexSet,
    winner: IndexId,
    mode: FrozenEval<'_>,
    out: &mut Vec<f64>,
) -> f64 {
    out.clear();
    let cfgx = config.with(winner);
    let cfg_len = cfgx.len();
    // One interner resolution for the fixed winning configuration.
    let key = (cfg_len >= 2).then(|| cache.interned_id(&cfgx)).flatten();
    let mut total = 0.0;
    for (i, &q) in queries.iter().enumerate() {
        let cur = per_query[i];
        let hit = |q: QueryId| -> Option<f64> {
            if cfg_len == 1 {
                cache.singleton_cost(q, winner)
            } else if cfg_len > cache.max_multi_len(q) {
                None
            } else {
                key.and_then(|k| cache.exact_get_id(q, k))
            }
        };
        let derive = || cache.derived_with_extra_uncounted(q, config, winner, cur);
        let v = match mode {
            FrozenEval::Fcfs => hit(q).unwrap_or_else(derive),
            FrozenEval::Atomic(pairs) => {
                if cfg_len <= 1 || (cfg_len == 2 && pairs.contains(&cfgx)) {
                    hit(q).unwrap_or_else(derive)
                } else {
                    derive()
                }
            }
            FrozenEval::Derive => derive(),
        };
        out.push(v);
        total += v;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixtune_common::rng::seeded;
    use rand::RngExt;

    /// A cache primed with pseudo-random singleton and multi entries,
    /// including deliberately non-monotone costs, so the kernel is pinned
    /// to the serial scan rather than to any monotonicity assumption.
    fn primed(universe: usize, queries: usize, entries: usize, seed: u64) -> WhatIfCache {
        let mut rng = seeded(seed);
        let empties: Vec<f64> = (0..queries).map(|_| 800.0 + rng.random::<f64>()).collect();
        let mut cache = WhatIfCache::new(universe, empties);
        for _ in 0..entries {
            let q = QueryId::from(rng.random_range(0..queries));
            let size = rng.random_range(1..4usize);
            let ids: Vec<IndexId> = (0..size)
                .map(|_| IndexId::from(rng.random_range(0..universe)))
                .collect();
            let cfg = IndexSet::from_ids(universe, ids);
            if cfg.is_empty() {
                continue;
            }
            let cost = 100.0 + 700.0 * rng.random::<f64>();
            cache.put(q, &cfg, cost);
        }
        cache
    }

    fn serial_oracle(
        cache: &WhatIfCache,
        queries: &[QueryId],
        per_query: &[f64],
        config: &IndexSet,
        admissible: &[(usize, IndexId)],
        mode: FrozenEval<'_>,
    ) -> Option<(usize, IndexId, f64)> {
        let mut best: Option<(f64, usize, IndexId)> = None;
        for &(pos, id) in admissible {
            let mut total = 0.0;
            let cfgx = config.with(id);
            for (i, &q) in queries.iter().enumerate() {
                let cur = per_query[i];
                let v = match mode {
                    FrozenEval::Fcfs => cache
                        .get(q, &cfgx)
                        .unwrap_or_else(|| cache.derived_with_extra(q, config, id, cur)),
                    FrozenEval::Atomic(pairs) => {
                        if cfgx.len() <= 1 || pairs.contains(&cfgx) {
                            cache
                                .get(q, &cfgx)
                                .unwrap_or_else(|| cache.derived_with_extra(q, config, id, cur))
                        } else {
                            cache.derived_with_extra(q, config, id, cur)
                        }
                    }
                    FrozenEval::Derive => cache.derived_with_extra(q, config, id, cur),
                };
                total += v;
            }
            if best.is_none_or(|(b, _, _)| total < b) {
                best = Some((total, pos, id));
            }
        }
        best.map(|(t, pos, id)| (pos, id, t))
    }

    #[test]
    fn kernel_matches_serial_oracle_across_modes_and_threads() {
        for seed in 0..6u64 {
            let universe = 24;
            let cache = primed(universe, 5, 60, seed);
            let queries: Vec<QueryId> = (0..5usize).map(QueryId::from).collect();
            let mut rng = seeded(seed ^ 0xabc);
            let config = IndexSet::from_ids(
                universe,
                (0..3).map(|_| IndexId::from(rng.random_range(0..universe))),
            );
            let per_query: Vec<f64> = queries.iter().map(|&q| cache.derived(q, &config)).collect();
            let admissible: Vec<(usize, IndexId)> = config.complement_iter().enumerate().collect();
            let pairs: HashSet<IndexSet> = (0..universe)
                .step_by(3)
                .map(|i| {
                    IndexSet::from_ids(
                        universe,
                        [IndexId::from(i), IndexId::from((i + 1) % universe)],
                    )
                })
                .collect();
            cache.freeze();
            for mode in [
                FrozenEval::Fcfs,
                FrozenEval::Atomic(&pairs),
                FrozenEval::Derive,
            ] {
                let expected =
                    serial_oracle(&cache, &queries, &per_query, &config, &admissible, mode);
                for threads in [1, 2, 3, 8] {
                    let (got, _) = frozen_argmin(
                        &cache,
                        &queries,
                        &per_query,
                        &config,
                        &admissible,
                        mode,
                        threads,
                        &Obs::disabled(),
                    );
                    match (expected, got) {
                        (None, None) => {}
                        (Some((ep, ei, ec)), Some((gp, gi, gc))) => {
                            assert_eq!((ep, ei), (gp, gi), "seed={seed} threads={threads}");
                            assert_eq!(ec.to_bits(), gc.to_bits(), "seed={seed}");
                        }
                        (e, g) => panic!("mismatch: expected {e:?}, got {g:?}"),
                    }
                    // Winner re-pricing reproduces the winning total bit-for-bit.
                    if let Some((_, id, cost)) = got {
                        let mut vals = Vec::new();
                        let total = winner_values(
                            &cache, &queries, &per_query, &config, id, mode, &mut vals,
                        );
                        assert_eq!(total.to_bits(), cost.to_bits());
                        assert_eq!(vals.len(), queries.len());
                    }
                }
            }
        }
    }

    #[test]
    fn kernel_telemetry_matches_serial_counts() {
        let universe = 16;
        let cache = primed(universe, 4, 40, 9);
        let queries: Vec<QueryId> = (0..4usize).map(QueryId::from).collect();
        let config = IndexSet::from_ids(universe, [IndexId::new(1), IndexId::new(5)]);
        let per_query: Vec<f64> = queries.iter().map(|&q| cache.derived(q, &config)).collect();
        let admissible: Vec<(usize, IndexId)> = config.complement_iter().enumerate().collect();
        cache.freeze();

        // Serial FCFS evaluation: count hits and derivations by hand.
        let mut serial_hits = 0usize;
        let mut serial_derivs = 0usize;
        for &(_, id) in &admissible {
            let cfgx = config.with(id);
            for &q in &queries {
                if cache.get(q, &cfgx).is_some() {
                    serial_hits += 1;
                } else {
                    serial_derivs += 1;
                }
            }
        }

        let before = cache.derivations();
        let (_, hits) = frozen_argmin(
            &cache,
            &queries,
            &per_query,
            &config,
            &admissible,
            FrozenEval::Fcfs,
            4,
            &Obs::disabled(),
        );
        assert_eq!(hits, serial_hits);
        assert_eq!(cache.derivations() - before, serial_derivs);
    }

    #[test]
    fn empty_admissible_set_is_a_no_scan() {
        let cache = primed(8, 2, 10, 1);
        cache.freeze();
        let queries: Vec<QueryId> = (0..2usize).map(QueryId::from).collect();
        let config = IndexSet::empty(8);
        let per_query = vec![cache.empty_cost(queries[0]), cache.empty_cost(queries[1])];
        let (best, hits) = frozen_argmin(
            &cache,
            &queries,
            &per_query,
            &config,
            &[],
            FrozenEval::Derive,
            4,
            &Obs::disabled(),
        );
        assert!(best.is_none());
        assert_eq!(hits, 0);
    }
}
