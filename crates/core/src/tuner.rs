//! The tuner interface shared by every enumeration algorithm.
//!
//! A [`TuningContext`] bundles the simulated optimizer and the candidate
//! set; [`Constraints`] carries the cardinality constraint `K` and the
//! optional storage constraint; a [`TuningRequest`] packages constraints,
//! what-if budget, and seed for one session. [`Tuner::tune`] runs the
//! session and returns a [`TuningResult`] whose improvement is measured
//! against an *unmetered* oracle evaluation of the final configuration,
//! exactly as the paper measures "percentage improvement in terms of the
//! actual what-if cost" (§7).

use crate::budget::SessionTelemetry;
use crate::matrix::Layout;
use crate::obs::Obs;
use crate::source::{ObservedSource, SessionFaults};
use crate::stop::{StopReason, StopSignal};
use crate::warm::WarmState;
use ixtune_candidates::CandidateSet;
use ixtune_common::{IndexId, IndexSet};
use ixtune_optimizer::{SimulatedOptimizer, WhatIfOptimizer};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Everything a tuning session reads: the optimizer (schema + workload +
/// cost model), the candidate universe with per-query attribution, and
/// the session's observability handle (disabled by default — attach one
/// with [`with_obs`](Self::with_obs)).
pub struct TuningContext<'a> {
    pub opt: &'a SimulatedOptimizer,
    pub cands: &'a CandidateSet,
    obs: Obs,
    warm: Option<Arc<WarmState>>,
    faults: SessionFaults,
}

impl<'a> TuningContext<'a> {
    pub fn new(opt: &'a SimulatedOptimizer, cands: &'a CandidateSet) -> Self {
        debug_assert_eq!(opt.num_candidates(), cands.len());
        Self {
            opt,
            cands,
            obs: Obs::disabled(),
            warm: None,
            faults: SessionFaults::default(),
        }
    }

    /// Attach an observability handle: metrics and spans from the session
    /// report through it. Observability never perturbs results — the
    /// bit-identity property test in `crates/core/tests/obs_props.rs`
    /// holds the tuners to that.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Attach a warm store state (see [`crate::warm`]): the session's
    /// sources serve known costs from the snapshot without invoking the
    /// optimizer and ledger the ones they do compute. Warm seeding never
    /// perturbs results — only `warm_hits`/`warm_seeded` provenance
    /// counters differ from a cold run
    /// (`crates/core/tests/warm_store_props.rs`).
    pub fn with_warm(mut self, warm: Arc<WarmState>) -> Self {
        self.warm = Some(warm);
        self
    }

    /// Attach the session's fault state (see
    /// [`SessionFaults`]): the sources this context builds consult the
    /// plan's `whatif.*` sites, and the shared degraded flag records a
    /// fallback to derivation-only search. Inert by default.
    pub fn with_faults(mut self, faults: SessionFaults) -> Self {
        self.faults = faults;
        self
    }

    /// The session's fault state.
    pub fn faults(&self) -> &SessionFaults {
        &self.faults
    }

    /// The session's observability handle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The cost source tuners meter their calls against: the optimizer
    /// wrapped with this context's observability handle and, in the
    /// service, the warm store overlay.
    pub fn source(&self) -> ObservedSource<'a> {
        let src = ObservedSource::new(self.opt, self.obs.clone()).with_faults(self.faults.clone());
        match &self.warm {
            Some(w) => src.with_warm(Arc::clone(w)),
            None => src,
        }
    }

    /// Universe size `|I|`.
    pub fn universe(&self) -> usize {
        self.cands.len()
    }

    /// Number of queries `|W|`.
    pub fn num_queries(&self) -> usize {
        self.opt.num_queries()
    }

    /// Oracle (unmetered) workload cost of `config` — the evaluation
    /// metric, not available to budgeted search.
    pub fn oracle_cost(&self, config: &IndexSet) -> f64 {
        self.opt.workload_cost(config)
    }

    /// Oracle percentage improvement of `config` as a fraction in `[0, 1]`.
    pub fn oracle_improvement(&self, config: &IndexSet) -> f64 {
        let base = self.oracle_cost(&IndexSet::empty(self.universe()));
        if base <= 0.0 {
            return 0.0;
        }
        1.0 - self.oracle_cost(config) / base
    }
}

/// Tuning constraints on the *outcome* (distinct from the what-if budget,
/// which constrains the *search* — see §1 of the paper).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Constraints {
    /// Cardinality constraint `K`: max indexes in the recommendation.
    pub k: usize,
    /// Optional storage constraint: max total index size in bytes.
    pub storage_bytes: Option<u64>,
}

impl Constraints {
    pub fn cardinality(k: usize) -> Self {
        Self {
            k,
            storage_bytes: None,
        }
    }

    pub fn with_storage(k: usize, bytes: u64) -> Self {
        Self {
            k,
            storage_bytes: Some(bytes),
        }
    }

    /// Whether `config` plus index `extra` stays within the constraints.
    ///
    /// For per-candidate inner loops over a fixed `config`, build an
    /// [`ExtensionFilter`] once instead — it hoists the configuration-size
    /// sum out of the loop.
    pub fn admits(&self, ctx: &TuningContext<'_>, config: &IndexSet, extra: IndexId) -> bool {
        self.extension_filter(ctx, config).admits(ctx, extra)
    }

    /// Precompute the admission state for extending `config` by one index.
    pub fn extension_filter(&self, ctx: &TuningContext<'_>, config: &IndexSet) -> ExtensionFilter {
        ExtensionFilter {
            len_ok: config.len() < self.k,
            used_bytes: match self.storage_bytes {
                Some(_) => ctx.opt.config_size_bytes(config),
                None => 0,
            },
            limit: self.storage_bytes,
        }
    }

    /// Whether a whole configuration satisfies the constraints.
    pub fn satisfied_by(&self, ctx: &TuningContext<'_>, config: &IndexSet) -> bool {
        config.len() <= self.k
            && self
                .storage_bytes
                .is_none_or(|limit| ctx.opt.config_size_bytes(config) <= limit)
    }
}

/// Hoisted admission check for extending one fixed configuration: the
/// cardinality test and the configuration's current size are computed once,
/// so per-candidate checks are O(1).
#[derive(Clone, Copy, Debug)]
pub struct ExtensionFilter {
    len_ok: bool,
    used_bytes: u64,
    limit: Option<u64>,
}

impl ExtensionFilter {
    /// Whether adding `extra` keeps the configuration admissible.
    #[inline]
    pub fn admits(&self, ctx: &TuningContext<'_>, extra: IndexId) -> bool {
        self.len_ok
            && match self.limit {
                None => true,
                Some(limit) => self.used_bytes + ctx.opt.candidate_size_bytes(extra) <= limit,
            }
    }
}

/// Everything one tuning session is asked to do: the outcome constraints,
/// the what-if call budget, and the seed for any internal randomization.
///
/// Constructed builder-style:
///
/// ```
/// use ixtune_core::tuner::{Constraints, TuningRequest};
///
/// let req = TuningRequest::cardinality(10, 500).with_seed(3);
/// assert_eq!(req.constraints.k, 10);
/// assert_eq!(req.budget, 500);
/// assert_eq!(req.seed, 3);
///
/// let sc = TuningRequest::new(Constraints::cardinality(5), 200)
///     .with_storage(1 << 30);
/// assert_eq!(sc.constraints.storage_bytes, Some(1 << 30));
/// assert_eq!(sc.seed, 0);
/// assert_eq!(sc.session_threads, 0); // 0 = auto-detect
/// ```
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TuningRequest {
    /// Constraints on the recommended configuration.
    pub constraints: Constraints,
    /// What-if call budget `B` for the search.
    pub budget: usize,
    /// Seed for stochastic tuners; deterministic tuners ignore it.
    pub seed: u64,
    /// Logical thread count for intra-session parallelism; `0` means
    /// auto-detect from the host. Results are bit-identical for every
    /// value (see DESIGN.md §5c), so this only affects wall-clock time.
    pub session_threads: usize,
}

impl TuningRequest {
    /// A request with the given constraints and budget, seed 0.
    pub fn new(constraints: Constraints, budget: usize) -> Self {
        Self {
            constraints,
            budget,
            seed: 0,
            session_threads: 0,
        }
    }

    /// The common case: a cardinality constraint `K` and a budget.
    pub fn cardinality(k: usize, budget: usize) -> Self {
        Self::new(Constraints::cardinality(k), budget)
    }

    /// Set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the budget.
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = budget;
        self
    }

    /// Attach a storage constraint (max total index size in bytes).
    pub fn with_storage(mut self, bytes: u64) -> Self {
        self.constraints.storage_bytes = Some(bytes);
        self
    }

    /// Set the logical session thread count (`0` = auto-detect).
    pub fn with_session_threads(mut self, threads: usize) -> Self {
        self.session_threads = threads;
        self
    }
}

/// Outcome of one tuning session.
#[derive(Clone, Debug)]
pub struct TuningResult {
    /// Algorithm that produced the result.
    pub algorithm: String,
    /// The recommended configuration.
    pub config: IndexSet,
    /// What-if calls consumed (≤ the budget, by construction).
    pub calls_used: usize,
    /// Oracle improvement of `config`, as a fraction in `[0, 1]`.
    pub improvement: f64,
    /// The layout of budget-consuming calls.
    pub layout: Layout,
    /// Instrumentation counters from the session's what-if client.
    pub telemetry: SessionTelemetry,
    /// Why the session stopped. `None` for tuners that predate the stop
    /// protocol (external baselines); core tuners always set it.
    pub stop_reason: Option<StopReason>,
}

impl TuningResult {
    /// Build a result, filling in the oracle improvement.
    pub fn evaluate(
        algorithm: impl Into<String>,
        ctx: &TuningContext<'_>,
        config: IndexSet,
        calls_used: usize,
        layout: Layout,
    ) -> Self {
        let improvement = ctx.oracle_improvement(&config).max(0.0);
        Self {
            algorithm: algorithm.into(),
            config,
            calls_used,
            improvement,
            layout,
            telemetry: SessionTelemetry::default(),
            stop_reason: None,
        }
    }

    /// Attach the session's telemetry counters.
    pub fn with_telemetry(mut self, telemetry: SessionTelemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Attach the reason the session stopped.
    pub fn with_stop_reason(mut self, reason: StopReason) -> Self {
        self.stop_reason = Some(reason);
        self
    }

    /// Improvement as a percentage (the paper's y-axis).
    pub fn improvement_pct(&self) -> f64 {
        self.improvement * 100.0
    }
}

/// A budget-aware configuration enumeration algorithm.
///
/// `Sync` is a supertrait so tuners can be shared by reference across the
/// parallel experiment runner's worker threads; every tuner here is plain
/// configuration data, so the bound is free.
pub trait Tuner: Sync {
    /// Display name (used in reports and figures).
    fn name(&self) -> String;

    /// Whether results vary with [`TuningRequest::seed`]. Stochastic
    /// tuners are run once per seed by the experiment grid; deterministic
    /// ones once per cell.
    fn is_stochastic(&self) -> bool {
        false
    }

    /// Run one tuning session described by `req`.
    fn tune(&self, ctx: &TuningContext<'_>, req: &TuningRequest) -> TuningResult;

    /// Run one tuning session under a cooperative [`StopSignal`]: the
    /// tuner polls the signal at step/episode boundaries and, when it
    /// fires, returns the best configuration found so far with the
    /// matching [`StopReason`]. The default ignores the signal (correct
    /// for tuners that complete in one indivisible step); core tuners
    /// override it.
    fn tune_with_stop(
        &self,
        ctx: &TuningContext<'_>,
        req: &TuningRequest,
        stop: &StopSignal,
    ) -> TuningResult {
        let _ = stop;
        self.tune(ctx, req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixtune_candidates::generate_default;
    use ixtune_optimizer::CostModel;
    use ixtune_workload::gen::synth;

    pub(crate) fn context(seed: u64) -> (SimulatedOptimizer, CandidateSet) {
        let inst = synth::instance(seed);
        let cands = generate_default(&inst);
        let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
        (opt, cands)
    }

    #[test]
    fn oracle_improvement_of_empty_is_zero() {
        let (opt, cands) = context(1);
        let ctx = TuningContext::new(&opt, &cands);
        let empty = IndexSet::empty(ctx.universe());
        assert_eq!(ctx.oracle_improvement(&empty), 0.0);
    }

    #[test]
    fn oracle_improvement_of_full_is_nonnegative() {
        let (opt, cands) = context(2);
        let ctx = TuningContext::new(&opt, &cands);
        let full = IndexSet::full(ctx.universe());
        let imp = ctx.oracle_improvement(&full);
        assert!((0.0..=1.0).contains(&imp), "imp={imp}");
    }

    #[test]
    fn cardinality_constraint_admission() {
        let (opt, cands) = context(3);
        let ctx = TuningContext::new(&opt, &cands);
        let n = ctx.universe();
        assert!(n >= 2);
        let c = Constraints::cardinality(1);
        let empty = IndexSet::empty(n);
        assert!(c.admits(&ctx, &empty, IndexId::new(0)));
        let one = IndexSet::singleton(n, IndexId::new(0));
        assert!(!c.admits(&ctx, &one, IndexId::new(1)));
        assert!(c.satisfied_by(&ctx, &one));
    }

    #[test]
    fn storage_constraint_blocks_large_configs() {
        let (opt, cands) = context(4);
        let ctx = TuningContext::new(&opt, &cands);
        let n = ctx.universe();
        let tight = Constraints::with_storage(n, 1); // 1 byte: nothing fits
        let empty = IndexSet::empty(n);
        assert!(!tight.admits(&ctx, &empty, IndexId::new(0)));
        let loose = Constraints::with_storage(n, u64::MAX);
        assert!(loose.admits(&ctx, &empty, IndexId::new(0)));
    }

    #[test]
    fn result_evaluation_fills_improvement() {
        let (opt, cands) = context(5);
        let ctx = TuningContext::new(&opt, &cands);
        let full = IndexSet::full(ctx.universe());
        let r = TuningResult::evaluate("test", &ctx, full, 7, Layout::default());
        assert_eq!(r.algorithm, "test");
        assert_eq!(r.calls_used, 7);
        assert!(r.improvement >= 0.0);
        assert_eq!(r.improvement_pct(), r.improvement * 100.0);
    }
}
