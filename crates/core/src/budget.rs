//! Budget metering and the tuner-side what-if client.
//!
//! [`BudgetMeter`] counts what-if calls against the budget `B`.
//! [`MeteredWhatIf`] combines a [`CostSource`], the cache, and the meter
//! into the interface every budget-aware enumeration algorithm consumes:
//! cache hits are free (§1: "a cache is typically used to enable efficient
//! reuse of what-if calls"), cache misses consume budget, and once the
//! budget is exhausted only derived costs remain. The sequence of metered
//! calls is recorded as the session's [`Layout`](crate::matrix::Layout).
//!
//! [`BudgetMeter::charged_cost`] is the single place a budgeted optimizer
//! invocation happens, and therefore the single latency-observation point:
//! when the source is observing, the call is timed and reported through
//! [`CostSource::observe`]. With observability disabled nothing here reads
//! a clock.

use crate::derived::WhatIfCache;
use crate::obs::Obs;
use crate::source::{CostSource, SessionFaults};
use crate::stop::{Interrupt, StopReason};
use ixtune_common::fault::{site, FaultCursor};
use ixtune_common::{IndexId, IndexSet, QueryId};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Which part of a tuning session a budgeted what-if call is attributed to.
/// MCTS sets this around its phases (Algorithm 3/4); other tuners leave it
/// at [`Phase::Other`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Phase {
    /// Singleton-prior bootstrap (Algorithm 4).
    Priors,
    /// Episode evaluation of a configuration reached by tree selection.
    Selection,
    /// Episode evaluation of a configuration completed by a rollout.
    Rollout,
    /// Anything else (greedy enumeration, baselines, extraction).
    #[default]
    Other,
}

/// Per-session instrumentation: how the what-if client answered cost
/// questions, and where the budget went. Collected by [`MeteredWhatIf`]
/// and surfaced on [`TuningResult`](crate::tuner::TuningResult); the
/// experiment runner adds the wall-clock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionTelemetry {
    /// Budget-consuming optimizer invocations.
    pub what_if_calls: usize,
    /// What-if requests answered from the cache (free).
    pub cache_hits: usize,
    /// Cost evaluations answered by Eq. 1 derivation instead of a stored
    /// what-if result (includes FCFS fallbacks after budget exhaustion).
    pub derivations: usize,
    /// Budgeted calls spent in the priors phase ([`Phase::Priors`]).
    pub priors_calls: usize,
    /// Budgeted calls spent evaluating selection-terminal configurations.
    pub selection_calls: usize,
    /// Budgeted calls spent evaluating rollout-completed configurations.
    pub rollout_calls: usize,
    /// Budgeted calls outside any labelled phase.
    pub other_calls: usize,
    /// Logical session thread count the tuner resolved for this run
    /// (1 = serial). Results are invariant to it; recorded so telemetry
    /// JSON shows how a session was executed.
    pub session_threads: usize,
    /// Candidate scans executed through the frozen-cache parallel kernel
    /// (enumeration steps only; 0 under serial execution).
    pub parallel_scans: usize,
    /// Root-parallel MCTS worker trees merged into the master tree.
    pub tree_merges: usize,
    /// Batched budget reservations that were granted less than requested
    /// (should stay 0 — the static shares partition the remaining budget).
    pub reservation_shortfalls: usize,
    /// Wall-clock of the tuning session in milliseconds (stamped by the
    /// experiment runner from a monotonic clock; 0 when run outside the
    /// runner).
    pub wall_clock_ms: f64,
    /// Budgeted calls answered from the daemon's warm cost store (still
    /// counted in `what_if_calls`; the simulated-optimizer invocation was
    /// skipped because a prior session already paid for it). Execution
    /// provenance, like `wall_clock_ms` — not part of result identity.
    pub warm_hits: usize,
    /// Warm store entries this session was seeded with at admission.
    pub warm_seeded: usize,
}

/// Exact what-if call accounting. Serializable so a suspended session's
/// consumption survives in its checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BudgetMeter {
    budget: usize,
    used: usize,
}

impl BudgetMeter {
    pub fn new(budget: usize) -> Self {
        Self { budget, used: 0 }
    }

    /// Consume one call if any budget remains.
    #[inline]
    pub fn try_consume(&mut self) -> bool {
        if self.used < self.budget {
            self.used += 1;
            true
        } else {
            false
        }
    }

    /// Reserve up to `n` calls in one batch; returns the number granted
    /// (`min(n, remaining)`), never more than the remaining budget. The
    /// batched-reservation entry point for parallel workers drawing their
    /// shares of `B`.
    #[inline]
    pub fn reserve(&mut self, n: usize) -> usize {
        let granted = n.min(self.remaining());
        self.used += granted;
        granted
    }

    pub fn budget(&self) -> usize {
        self.budget
    }

    pub fn used(&self) -> usize {
        self.used
    }

    pub fn remaining(&self) -> usize {
        self.budget - self.used
    }

    pub fn exhausted(&self) -> bool {
        self.used >= self.budget
    }

    /// Forfeit the remaining budget: shrink `budget` down to `used`, so
    /// the meter reads exhausted while `used` keeps reporting the calls
    /// actually made. The what-if error degradation ladder calls this —
    /// once the source is failing, the rest of `B` is worthless and every
    /// subsequent cost comes from derivation.
    pub fn exhaust(&mut self) {
        self.budget = self.used;
    }

    /// Consume one call and price `(q, config)` against the source; `None`
    /// when the budget is spent. This is the *only* path through which a
    /// budgeted optimizer invocation flows, so it is where the source's
    /// [`observe`](CostSource::observe) hook fires — with the wall-clock
    /// elapsed when the source is observing, and with no clock reads at
    /// all when it is not.
    pub fn charged_cost(
        &mut self,
        src: &dyn CostSource,
        q: QueryId,
        config: &IndexSet,
    ) -> Option<f64> {
        self.charged_cost_tagged(src, q, config).map(|(c, _)| c)
    }

    /// [`charged_cost`](Self::charged_cost) with warm provenance: the
    /// second component is `true` when the source served the answer from a
    /// warm store snapshot. Warm answers consume budget exactly like
    /// simulated ones, but skip the latency observation — there was no
    /// optimizer invocation to time, and a synthetic zero would poison the
    /// latency histograms.
    pub fn charged_cost_tagged(
        &mut self,
        src: &dyn CostSource,
        q: QueryId,
        config: &IndexSet,
    ) -> Option<(f64, bool)> {
        if !self.try_consume() {
            return None;
        }
        let t0 = src.observing().then(Instant::now);
        let (cost, warm) = src.cost_tagged(q, config);
        if let Some(t0) = t0 {
            if !warm {
                src.observe(q, config, cost, t0.elapsed().as_secs_f64());
            }
        }
        Some((cost, warm))
    }
}

/// The tuner-side what-if client: cost source + cache + meter + call
/// trace, instrumented with per-session [`SessionTelemetry`].
pub struct MeteredWhatIf<'a> {
    src: &'a dyn CostSource,
    cache: WhatIfCache,
    meter: BudgetMeter,
    /// Chronological record of budget-consuming calls — the layout of the
    /// budget allocation matrix (§3.2).
    trace: Vec<(QueryId, IndexSet)>,
    /// Attribution for subsequent budgeted calls.
    phase: Phase,
    /// Calls issued vs served from cache, and the per-phase budget split.
    /// Derivation counts live in the cache (they happen behind `&self`).
    counters: SessionTelemetry,
    /// Observability handle mirrored from the source at construction.
    obs: Obs,
    /// Session fault state mirrored from the source at construction.
    faults: SessionFaults,
    /// This client's private `whatif.error` cursor: call indices follow the
    /// client's own miss stream, so injection is deterministic under any
    /// thread interleaving. Inert (one branch) without a fault plan.
    fault_cursor: FaultCursor,
    /// Telemetry as of the last [`publish_obs`](Self::publish_obs) — the
    /// delta base, so registry counters never double-count.
    published: SessionTelemetry,
    /// Whether this client publishes telemetry deltas. Root-parallel
    /// workers don't: their counters merge into the master, which
    /// publishes once after the merge.
    obs_publishing: bool,
}

impl<'a> MeteredWhatIf<'a> {
    /// Create a client with budget `budget`. Computes `c(q, ∅)` for every
    /// query up front; these baseline calls are not charged (every
    /// algorithm and the evaluation metric need them — see DESIGN.md §5).
    pub fn new(src: &'a dyn CostSource, budget: usize) -> Self {
        let faults = src.faults();
        let fault_cursor = faults.plan().cursor(site::WHATIF_ERROR);
        Self {
            src,
            cache: WhatIfCache::from_source(src),
            meter: BudgetMeter::new(budget),
            trace: Vec::new(),
            phase: Phase::Other,
            counters: SessionTelemetry {
                warm_seeded: src.warm_seeded(),
                ..SessionTelemetry::default()
            },
            obs: src.obs(),
            faults,
            fault_cursor,
            published: SessionTelemetry::default(),
            obs_publishing: true,
        }
    }

    /// Create a client over an existing cache snapshot — the root-parallel
    /// worker entry point: the worker starts from a clone of the master's
    /// cache (priors and earlier calls visible, hits stay free) but with a
    /// private budget grant and zeroed derivation counters, so its
    /// telemetry reports only its own activity. Workers don't publish
    /// telemetry into the registry themselves — the master does after the
    /// merge — so a scrape never sees a worker's counters twice.
    pub fn with_cache(src: &'a dyn CostSource, budget: usize, cache: WhatIfCache) -> Self {
        cache.reset_derivations();
        let faults = src.faults();
        let fault_cursor = faults.plan().cursor(site::WHATIF_ERROR);
        Self {
            src,
            cache,
            meter: BudgetMeter::new(budget),
            trace: Vec::new(),
            phase: Phase::Other,
            counters: SessionTelemetry::default(),
            obs: src.obs(),
            faults,
            fault_cursor,
            published: SessionTelemetry::default(),
            obs_publishing: false,
        }
    }

    /// Rebuild a client from checkpointed parts — the resume entry point.
    /// The phase starts at [`Phase::Other`]; MCTS re-sets it per episode,
    /// so the restored call stream is attributed identically. The publish
    /// base starts at the restored telemetry: the pre-suspend segment
    /// already published its counters, so only new activity flows to the
    /// registry.
    pub(crate) fn from_parts(
        src: &'a dyn CostSource,
        cache: WhatIfCache,
        meter: BudgetMeter,
        trace: Vec<(QueryId, IndexSet)>,
        counters: SessionTelemetry,
    ) -> Self {
        let published = SessionTelemetry {
            derivations: cache.derivations(),
            ..counters
        };
        let faults = src.faults();
        let fault_cursor = faults.plan().cursor(site::WHATIF_ERROR);
        Self {
            src,
            cache,
            meter,
            trace,
            phase: Phase::Other,
            counters,
            obs: src.obs(),
            faults,
            fault_cursor,
            published,
            obs_publishing: true,
        }
    }

    /// Raw telemetry counters *without* the cache's derivation count —
    /// what a checkpoint stores (derivations are restored with the cache).
    pub(crate) fn counters(&self) -> SessionTelemetry {
        self.counters
    }

    /// Attribute subsequent budgeted calls to `phase`. Returns the
    /// previous phase so callers can restore it.
    pub fn set_phase(&mut self, phase: Phase) -> Phase {
        std::mem::replace(&mut self.phase, phase)
    }

    /// Snapshot of the session's telemetry so far (derivation counts come
    /// from the cache).
    pub fn telemetry(&self) -> SessionTelemetry {
        SessionTelemetry {
            derivations: self.cache.derivations(),
            ..self.counters
        }
    }

    pub fn universe(&self) -> usize {
        self.cache.universe()
    }

    pub fn num_queries(&self) -> usize {
        self.cache.num_queries()
    }

    pub fn meter(&self) -> &BudgetMeter {
        &self.meter
    }

    pub fn cache(&self) -> &WhatIfCache {
        &self.cache
    }

    pub fn trace(&self) -> &[(QueryId, IndexSet)] {
        &self.trace
    }

    /// Take the trace out of the client (for result reporting).
    pub fn into_trace(self) -> Vec<(QueryId, IndexSet)> {
        self.trace
    }

    /// Flip the cache into its frozen read-only phase (see the publish
    /// protocol in [`WhatIfCache`]). Called by enumeration drivers before
    /// sharing the cache across scan threads.
    pub fn freeze_cache(&self) {
        self.cache.freeze();
    }

    /// Account one frozen-cache parallel scan: `hits` cache hits observed
    /// by the kernel (its derivation counts flow through the cache's
    /// per-shard counters directly).
    pub(crate) fn note_parallel_scan(&mut self, hits: usize) {
        self.counters.cache_hits += hits;
        self.counters.parallel_scans += 1;
    }

    /// Direct access to the telemetry counters — root-parallel merge code
    /// folds worker counters into the master's here.
    pub(crate) fn counters_mut(&mut self) -> &mut SessionTelemetry {
        &mut self.counters
    }

    /// Merge one budget-consuming call observed by a root-parallel worker:
    /// publish its result into the master cache (duplicate-safe — several
    /// workers may have paid for the same cell) and append it to the
    /// layout trace (both workers did consume budget, so the layout keeps
    /// both calls). Telemetry counters are merged separately.
    pub(crate) fn absorb_call(&mut self, q: QueryId, config: IndexSet, cost: f64) {
        self.cache.put(q, &config, cost);
        self.trace.push((q, config));
    }

    /// Attempt a what-if call for `(q, config)`.
    ///
    /// * Cache hit → `Some(cost)`, no budget consumed.
    /// * Miss with budget → performs the optimizer call, caches it, records
    ///   it in the layout trace, returns `Some(cost)`.
    /// * Miss without budget → `None`.
    pub fn what_if(&mut self, q: QueryId, config: &IndexSet) -> Option<f64> {
        let shard = q.index() % self.cache.num_shards();
        if let Some(c) = self.cache.get(q, config) {
            self.counters.cache_hits += 1;
            self.obs.on_cache_ref(shard, true);
            return Some(c);
        }
        self.obs.on_cache_ref(shard, false);
        // Injected what-if failure: forfeit the remaining budget and fall
        // back to derivation-only search. The enumerators already handle
        // `None` (budget exhaustion) by salvaging best-so-far through the
        // FCFS derivation path, so degradation reuses that machinery.
        if self.fault_cursor.fire() {
            self.faults.mark_degraded();
            self.meter.exhaust();
            return None;
        }
        let (cost, warm) = self.meter.charged_cost_tagged(self.src, q, config)?;
        self.counters.what_if_calls += 1;
        if warm {
            self.counters.warm_hits += 1;
        }
        match self.phase {
            Phase::Priors => self.counters.priors_calls += 1,
            Phase::Selection => self.counters.selection_calls += 1,
            Phase::Rollout => self.counters.rollout_calls += 1,
            Phase::Other => self.counters.other_calls += 1,
        }
        // The `get` above already established the miss, so skip `put`'s
        // duplicate probe.
        self.cache.put_new(q, config, cost);
        self.trace.push((q, config.clone()));
        Some(cost)
    }

    /// The observability handle this client mirrors into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Whether this session degraded to derivation-only search after an
    /// injected (or real) what-if failure.
    pub fn degraded(&self) -> bool {
        self.faults.is_degraded()
    }

    /// The stop reason for a finished session: the usual
    /// [`StopReason::from_interrupt`] mapping, except that an uninterrupted
    /// run that degraded reports [`StopReason::Degraded`] instead of
    /// `BudgetExhausted`/`Completed` — callers can tell a salvaged result
    /// from a naturally terminated one.
    pub fn stop_reason(&self, interrupt: Option<Interrupt>) -> StopReason {
        if interrupt.is_none() && self.faults.is_degraded() {
            return StopReason::Degraded;
        }
        StopReason::from_interrupt(interrupt, self.meter.exhausted())
    }

    /// Mirror telemetry growth since the last publish into the metrics
    /// registry. Called at step/episode boundaries and at session end; a
    /// no-op when observability is disabled (or for root-parallel workers,
    /// whose counters the master publishes after the merge).
    pub fn publish_obs(&mut self) {
        if !self.obs_publishing || !self.obs.is_enabled() {
            return;
        }
        let cur = self.telemetry();
        self.obs.publish_deltas(&self.published, &cur);
        self.published = cur;
    }

    /// `cost(q, C)` under FCFS budget allocation: the what-if cost while
    /// budget lasts, the derived cost afterwards (§4.2.1).
    pub fn cost_fcfs(&mut self, q: QueryId, config: &IndexSet) -> f64 {
        match self.what_if(q, config) {
            Some(c) => c,
            None => self.cache.derived(q, config),
        }
    }

    /// FCFS cost of an *extension* `C ∪ {extra}` given `cur = cost(q, C)`:
    /// the what-if cost while budget lasts, the postings-guided incremental
    /// derivation afterwards. Same value (and same telemetry) as
    /// [`cost_fcfs`](Self::cost_fcfs) on `C ∪ {extra}`, without the full
    /// subset rescan. `config` must already include `extra`.
    pub fn cost_fcfs_extend(
        &mut self,
        q: QueryId,
        config: &IndexSet,
        extra: IndexId,
        cur: f64,
    ) -> f64 {
        debug_assert!(config.contains(extra));
        match self.what_if(q, config) {
            Some(c) => c,
            None => self.cache.derived_with_extra(q, config, extra, cur),
        }
    }

    /// Derived cost `d(q, C)` (never consumes budget).
    pub fn derived(&self, q: QueryId, config: &IndexSet) -> f64 {
        self.cache.derived(q, config)
    }

    /// Workload-level derived cost `d(W, C)`.
    pub fn derived_workload(&self, config: &IndexSet) -> f64 {
        self.cache.derived_workload(config)
    }

    pub fn empty_cost(&self, q: QueryId) -> f64 {
        self.cache.empty_cost(q)
    }

    pub fn empty_workload_cost(&self) -> f64 {
        self.cache.empty_workload_cost()
    }

    /// Percentage improvement `η(W, C)` (Eq. 4) of `config` under derived
    /// costs, as a fraction in `[0, 1]`.
    pub fn improvement(&self, config: &IndexSet) -> f64 {
        let base = self.empty_workload_cost();
        if base <= 0.0 {
            return 0.0;
        }
        (1.0 - self.derived_workload(config) / base).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixtune_candidates::generate_default;
    use ixtune_common::IndexId;
    use ixtune_optimizer::{CostModel, SimulatedOptimizer};
    use ixtune_workload::gen::synth;

    fn optimizer(seed: u64) -> SimulatedOptimizer {
        let inst = synth::instance(seed);
        let cands = generate_default(&inst);
        SimulatedOptimizer::new(inst, cands.indexes, CostModel::default())
    }

    #[test]
    fn meter_counts_exactly() {
        let mut m = BudgetMeter::new(2);
        assert!(m.try_consume());
        assert!(m.try_consume());
        assert!(!m.try_consume());
        assert_eq!(m.used(), 2);
        assert_eq!(m.remaining(), 0);
        assert!(m.exhausted());
    }

    #[test]
    fn reserve_never_exceeds_remaining() {
        let mut m = BudgetMeter::new(5);
        assert_eq!(m.reserve(3), 3);
        assert_eq!(m.used(), 3);
        // remaining < n: partial grant drains the meter exactly.
        assert_eq!(m.reserve(10), 2);
        assert_eq!(m.used(), 5);
        assert!(m.exhausted());
        // remaining = 0: nothing granted, accounting unchanged.
        assert_eq!(m.reserve(1), 0);
        assert_eq!(m.reserve(0), 0);
        assert_eq!(m.used(), 5);
        assert_eq!(m.remaining(), 0);
    }

    #[test]
    fn reserve_zero_budget_boundary() {
        let mut m = BudgetMeter::new(0);
        assert_eq!(m.reserve(4), 0);
        assert_eq!(m.used(), 0);
        assert!(m.exhausted());
    }

    #[test]
    fn with_cache_starts_from_snapshot_with_fresh_counters() {
        let opt = optimizer(11);
        let n = opt.num_candidates();
        let q = QueryId::new(0);
        let mut master = MeteredWhatIf::new(&opt, 5);
        let c0 = IndexSet::singleton(n, IndexId::new(0));
        master.what_if(q, &c0).unwrap();
        let _ = master.derived(
            q,
            &IndexSet::from_ids(n, [IndexId::new(0), IndexId::new(1)]),
        );
        assert!(master.telemetry().derivations > 0);

        let mut worker = MeteredWhatIf::with_cache(&opt, 2, master.cache().clone());
        let t = worker.telemetry();
        assert_eq!(t.derivations, 0, "worker counters start clean");
        assert_eq!(t.what_if_calls, 0);
        // Master's entries are visible: re-asking c0 is a free hit.
        assert!(worker.what_if(q, &c0).is_some());
        assert_eq!(worker.meter().used(), 0);
        assert_eq!(worker.telemetry().cache_hits, 1);
    }

    #[test]
    fn cache_hits_are_free() {
        let opt = optimizer(3);
        let n = opt.num_candidates();
        let mut mw = MeteredWhatIf::new(&opt, 5);
        let cfg = IndexSet::singleton(n, IndexId::new(0));
        let q = QueryId::new(0);
        let a = mw.what_if(q, &cfg).unwrap();
        assert_eq!(mw.meter().used(), 1);
        let b = mw.what_if(q, &cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(mw.meter().used(), 1, "second call hits cache");
        assert_eq!(mw.trace().len(), 1);
    }

    #[test]
    fn empty_costs_not_charged() {
        let opt = optimizer(4);
        let mw = MeteredWhatIf::new(&opt, 3);
        assert_eq!(mw.meter().used(), 0);
        assert!(mw.empty_workload_cost() > 0.0);
    }

    #[test]
    fn exhaustion_falls_back_to_derived() {
        let opt = optimizer(5);
        let n = opt.num_candidates();
        assert!(n >= 3, "need candidates");
        let mut mw = MeteredWhatIf::new(&opt, 1);
        let q = QueryId::new(0);
        let c0 = IndexSet::singleton(n, IndexId::new(0));
        let c1 = IndexSet::singleton(n, IndexId::new(1));
        assert!(mw.what_if(q, &c0).is_some());
        assert!(mw.what_if(q, &c1).is_none(), "budget spent");
        // FCFS falls back to derivation (here: the empty-config cost).
        let d = mw.cost_fcfs(q, &c1);
        assert_eq!(d, mw.empty_cost(q));
        assert_eq!(mw.meter().used(), 1);
    }

    #[test]
    fn derived_equals_whatif_when_known() {
        let opt = optimizer(6);
        let n = opt.num_candidates();
        let mut mw = MeteredWhatIf::new(&opt, 10);
        let q = QueryId::new(0);
        let cfg = IndexSet::from_ids(n, [IndexId::new(0), IndexId::new(1)]);
        let c = mw.what_if(q, &cfg).unwrap();
        assert_eq!(mw.derived(q, &cfg), c);
    }

    #[test]
    fn telemetry_counts_calls_hits_and_derivations() {
        let opt = optimizer(8);
        let n = opt.num_candidates();
        assert!(n >= 2, "need candidates");
        let mut mw = MeteredWhatIf::new(&opt, 2);
        let q = QueryId::new(0);
        let c0 = IndexSet::singleton(n, IndexId::new(0));
        let c1 = IndexSet::singleton(n, IndexId::new(1));

        // Scripted sequence: miss (budgeted), hit, miss (budgeted), hit,
        // then exhaustion → FCFS derivation fallback.
        assert!(mw.what_if(q, &c0).is_some());
        assert!(mw.what_if(q, &c0).is_some());
        assert!(mw.what_if(q, &c1).is_some());
        assert!(mw.what_if(q, &c1).is_some());
        let pair = IndexSet::from_ids(n, [IndexId::new(0), IndexId::new(1)]);
        let _ = mw.cost_fcfs(q, &pair);

        let t = mw.telemetry();
        assert_eq!(t.what_if_calls, 2);
        assert_eq!(t.cache_hits, 2);
        assert_eq!(t.derivations, 1, "exhausted FCFS derives");
        assert_eq!(t.other_calls, 2, "no phase set → Other");
        assert_eq!(t.priors_calls + t.selection_calls + t.rollout_calls, 0);
        assert_eq!(t.wall_clock_ms, 0.0, "runner stamps wall clock");
    }

    #[test]
    fn telemetry_attributes_calls_to_the_active_phase() {
        let opt = optimizer(9);
        let n = opt.num_candidates();
        assert!(n >= 4, "need candidates");
        let mut mw = MeteredWhatIf::new(&opt, 10);
        let q = QueryId::new(0);
        let cfg = |i: u32| IndexSet::singleton(n, IndexId::new(i));

        let prev = mw.set_phase(Phase::Priors);
        assert_eq!(prev, Phase::Other);
        mw.what_if(q, &cfg(0));
        mw.set_phase(Phase::Selection);
        mw.what_if(q, &cfg(1));
        mw.what_if(q, &cfg(2));
        mw.set_phase(Phase::Rollout);
        mw.what_if(q, &cfg(3));
        mw.what_if(q, &cfg(3)); // cache hit: not attributed to any phase
        mw.set_phase(Phase::Other);

        let t = mw.telemetry();
        assert_eq!(t.priors_calls, 1);
        assert_eq!(t.selection_calls, 2);
        assert_eq!(t.rollout_calls, 1);
        assert_eq!(t.other_calls, 0);
        assert_eq!(t.what_if_calls, 4);
        assert_eq!(t.cache_hits, 1);
        assert_eq!(
            t.priors_calls + t.selection_calls + t.rollout_calls + t.other_calls,
            t.what_if_calls,
            "phase split partitions the budgeted calls"
        );
    }

    #[test]
    fn improvement_is_zero_for_empty_and_nonnegative() {
        let opt = optimizer(7);
        let n = opt.num_candidates();
        let mut mw = MeteredWhatIf::new(&opt, 20);
        assert_eq!(mw.improvement(&IndexSet::empty(n)), 0.0);
        let q = QueryId::new(0);
        for i in 0..n.min(5) {
            mw.what_if(q, &IndexSet::singleton(n, IndexId::from(i)));
        }
        let full = IndexSet::full(n);
        assert!(mw.improvement(&full) >= 0.0);
    }
}
