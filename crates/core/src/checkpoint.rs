//! Versioned on-disk snapshots of suspended MCTS sessions.
//!
//! A checkpoint captures *everything* the episode loop reads between
//! episodes: the search tree (exact arena numbering), the what-if cache
//! (exact stored order, so derived costs answer bit-identically), the
//! budget meter, the layout trace, the telemetry counters, the RNG state
//! (raw xoshiro256** words), the priors vector, the best-explored
//! configuration, the convergence trace, the idle-streak counter, and the
//! AMAF table when RAVE updates are configured. Suspension happens only at
//! episode boundaries, so no mid-episode state exists to capture; resuming
//! replays the remaining episodes exactly as the uninterrupted run would
//! have executed them.
//!
//! The format is line-oriented JSON (one document) with an explicit
//! [`SNAPSHOT_VERSION`]; readers reject other versions rather than guess.
//! `f64` values survive the JSON round trip bit-exactly (see the vendored
//! `serde_json` docs) — the one excluded value is NaN, which the cache
//! snapshot never emits (NaN cells mean "unknown" and are skipped).

use crate::budget::{BudgetMeter, SessionTelemetry};
use crate::derived::CacheSnapshot;
use crate::mcts::policy::AmafTable;
use crate::mcts::tree::TreeSnapshot;
use crate::tuner::TuningRequest;
use ixtune_common::{IndexSet, QueryId};
use serde::{Deserialize, Serialize};

/// Current checkpoint format version. Bump on any incompatible change to
/// [`MctsCheckpoint`] or the snapshot types it embeds.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Serialized state of a suspended MCTS tuning session.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MctsCheckpoint {
    /// Format version ([`SNAPSHOT_VERSION`] at capture time).
    pub version: u32,
    /// `Tuner::name()` of the capturing tuner — resume refuses a
    /// differently-configured tuner, which would diverge silently.
    pub algorithm: String,
    /// The original request (constraints, budget, seed, threads).
    pub req: TuningRequest,
    /// Raw xoshiro256** state of the episode RNG.
    pub rng: (u64, u64, u64, u64),
    /// Singleton priors η(W, {I_i}) from the (already completed) priors
    /// phase.
    pub priors: Vec<f64>,
    /// Search tree with exact arena numbering.
    pub tree: TreeSnapshot,
    /// What-if cache in exact stored order.
    pub cache: CacheSnapshot,
    /// Budget consumption at suspension.
    pub meter: BudgetMeter,
    /// Chronological budget-consuming calls (the layout under
    /// construction).
    pub trace: Vec<(QueryId, IndexSet)>,
    /// Telemetry counters *excluding* cache derivations (those are
    /// restored with the cache).
    pub counters: SessionTelemetry,
    /// Best evaluated configuration and its estimated cost.
    pub best: Option<(IndexSet, f64)>,
    /// Convergence trace so far.
    pub conv: Vec<f64>,
    /// Consecutive budget-free episodes at suspension.
    pub idle_streak: usize,
    /// AMAF statistics (RAVE updates only).
    pub amaf: Option<AmafTable>,
}

impl MctsCheckpoint {
    /// Compact JSON encoding (a single line — fits the service's
    /// line-delimited file layout).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serialization is infallible")
    }

    /// Parse a checkpoint from JSON. Structural validation (tree links,
    /// cache ordering, workload shape) happens in `MctsTuner::resume`.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("malformed checkpoint: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcts::{MctsOutcome, MctsTuner};
    use crate::stop::StopSignal;
    use crate::tuner::TuningContext;
    use ixtune_candidates::generate_default;
    use ixtune_optimizer::{CostModel, SimulatedOptimizer};
    use ixtune_workload::gen::synth;

    fn capture(seed: u64, budget: usize, pause: usize) -> MctsCheckpoint {
        let inst = synth::instance(seed);
        let cands = generate_default(&inst);
        let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
        let ctx = TuningContext::new(&opt, &cands);
        let req = crate::tuner::TuningRequest::cardinality(3, budget).with_seed(seed);
        let stop = StopSignal::armed().suspend_after_calls(pause);
        match MctsTuner::default().run_resumable(&ctx, &req, &stop) {
            MctsOutcome::Suspended(ckpt) => *ckpt,
            MctsOutcome::Finished(..) => panic!("expected suspension at {pause} calls"),
        }
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let ckpt = capture(3, 120, 60);
        assert_eq!(ckpt.version, SNAPSHOT_VERSION);
        assert!(ckpt.meter.used() >= 60, "suspended after the trigger");
        let json = ckpt.to_json();
        assert!(!json.contains('\n'), "one line for line-delimited files");
        let back = MctsCheckpoint::from_json(&json).unwrap();
        // Re-encoding the parsed checkpoint must reproduce the bytes —
        // field order and every f64 bit pattern survive.
        assert_eq!(back.to_json(), json);
        assert_eq!(back.tree, ckpt.tree);
        assert_eq!(back.cache, ckpt.cache);
        assert_eq!(back.meter, ckpt.meter);
        assert_eq!(back.counters, ckpt.counters);
        assert_eq!(back.rng, ckpt.rng);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(MctsCheckpoint::from_json("").is_err());
        assert!(MctsCheckpoint::from_json("{\"version\": 1}").is_err());
        assert!(MctsCheckpoint::from_json("not json").is_err());
    }

    #[test]
    fn resume_rejects_version_and_algorithm_mismatch() {
        let inst = synth::instance(5);
        let cands = generate_default(&inst);
        let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
        let ctx = TuningContext::new(&opt, &cands);
        let mut ckpt = capture(5, 100, 50);

        let tuner = MctsTuner::default();
        ckpt.version = SNAPSHOT_VERSION + 1;
        assert!(tuner.resume(&ctx, &ckpt, &StopSignal::never()).is_err());
        ckpt.version = SNAPSHOT_VERSION;

        let other = MctsTuner::default().with_root_workers(2);
        assert!(other.resume(&ctx, &ckpt, &StopSignal::never()).is_err());

        assert!(tuner.resume(&ctx, &ckpt, &StopSignal::never()).is_ok());
    }
}
