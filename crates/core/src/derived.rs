//! What-if cache and cost derivation (§3.1 of the paper).
//!
//! The cache stores every what-if result observed during a tuning session.
//! For configurations whose what-if cost is *not* known, the **derived
//! cost** (Eq. 1) is the upper bound
//! `d(q, C) = min_{S ⊆ C, c(q,S) known} c(q, S)`,
//! which under the monotonicity assumption never underestimates. Singleton
//! entries have a dense fast path (the restriction of Eq. 2 that the
//! paper's analysis in §3.1.2 builds on); larger entries are kept sorted by
//! ascending cost so the subset scan can stop at the first hit.
//!
//! # Sharding and the publish/freeze protocol
//!
//! Storage is split into shards by `query_id % shards`. A tuning session
//! alternates between two phases:
//!
//! * **write phase** — while budget remains, what-if results are appended
//!   through `&mut self` (single-threaded by construction; the FCFS call
//!   order *defines* the cache contents, so parallel writes would change
//!   the derived costs);
//! * **frozen read phase** — once the budget is exhausted, [`freeze`]
//!   flips the cache read-only and enumeration fans derivation probes out
//!   across threads against `&self`. Readers are lock-free: the only
//!   shared mutable state is the per-shard derivation counter, a relaxed
//!   atomic that parallel scans bump in per-query batches rather than
//!   per probe.
//!
//! [`freeze`]: WhatIfCache::freeze

use ixtune_common::{ConfigInterner, IdCostMap, IndexId, IndexSet, QueryId};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Number of query shards (capped by the query count).
const DEFAULT_SHARDS: usize = 8;

/// One shard's storage: rows for the queries with `q % shards == s`,
/// addressed by local row `q / shards`.
#[derive(Debug)]
struct CacheShard {
    /// Dense singleton costs: `singleton[lq][i] = c(q, {I_i})`, NaN if unknown.
    singleton: Vec<Vec<f64>>,
    /// Multi-index entries per local row, sorted by ascending cost.
    multi: Vec<Vec<(IndexSet, f64)>>,
    /// Inverted postings: `postings[lq][i]` = ascending positions into
    /// `multi[lq]` of entries containing index `i`. Because `multi` is
    /// sorted by cost, position order *is* cost order, so
    /// [`WhatIfCache::derived_with_extra`] can scan only the entries that
    /// mention `extra` and still early-exit on cost. Rows are lazily
    /// sized: a row with no multi entries stays an empty `Vec` instead of
    /// holding `universe` empty postings lists — materializing
    /// `rows × universe` headers up front dominates cache construction on
    /// large workloads.
    postings: Vec<Vec<Vec<u32>>>,
    /// Exact multi-entry lookup, keyed by the cache-level interned id of
    /// the configuration (see [`WhatIfCache::interner`]) — an integer
    /// open-addressed probe instead of hashing a block bitset per lookup.
    /// Singletons have their own dense row and never enter this table.
    exact: Vec<IdCostMap>,
    /// Largest multi-entry size stored per local row: configurations
    /// bigger than this can skip the exact-map probe entirely, which
    /// avoids hashing wide bitsets in greedy inner loops.
    max_multi_size: Vec<usize>,
    /// Telemetry: cost evaluations answered by derivation (Eq. 1/Eq. 2)
    /// rather than a stored what-if result. Atomic (relaxed) because
    /// derivation happens behind `&self`, possibly from several threads;
    /// per-shard so concurrent scans of different queries do not contend
    /// on one cache line.
    derivations: AtomicUsize,
}

impl CacheShard {
    fn new(rows: usize, universe: usize) -> Self {
        Self {
            singleton: vec![vec![f64::NAN; universe]; rows],
            multi: vec![Vec::new(); rows],
            postings: vec![Vec::new(); rows],
            exact: vec![IdCostMap::new(); rows],
            max_multi_size: vec![0; rows],
            derivations: AtomicUsize::new(0),
        }
    }
}

impl Clone for CacheShard {
    fn clone(&self) -> Self {
        Self {
            singleton: self.singleton.clone(),
            multi: self.multi.clone(),
            postings: self.postings.clone(),
            exact: self.exact.clone(),
            max_multi_size: self.max_multi_size.clone(),
            derivations: AtomicUsize::new(self.derivations.load(Ordering::Relaxed)),
        }
    }
}

/// Per-session what-if cache with derivation.
#[derive(Debug)]
pub struct WhatIfCache {
    universe: usize,
    /// `c(q, ∅)` for every query — computed up front, not budgeted.
    empty: Vec<f64>,
    /// `Σ_q c(q, ∅)`, cached so `improvement()` does not re-sum per call.
    empty_total: f64,
    /// Query-sharded storage: query `q` lives in shard `q % shards.len()`
    /// at local row `q / shards.len()`.
    shards: Vec<CacheShard>,
    /// Cache-level interner for multi-entry (len ≥ 2) configurations:
    /// stable insertion-ordered `IndexSet → u32` ids shared by every
    /// shard's `exact` table. Interning happens on the write path
    /// (`&mut self`); the frozen read phase only resolves ids (`&self`),
    /// so parallel scans stay lock-free.
    interner: ConfigInterner,
    /// Candidates with a known singleton cost for *any* query — one side
    /// of the [`informed_candidates`](Self::informed_candidates) filter
    /// that lets frozen scans skip candidates no stored entry can price.
    singleton_any: IndexSet,
    /// Number of distinct (q, C) what-if results stored (excluding ∅).
    stored: usize,
    /// Publish-protocol latch: once set, the cache is in its read-only
    /// phase and append paths are debug-asserted unreachable. Cloning
    /// starts a fresh (unfrozen) write phase.
    frozen: AtomicBool,
}

impl Clone for WhatIfCache {
    fn clone(&self) -> Self {
        Self {
            universe: self.universe,
            empty: self.empty.clone(),
            empty_total: self.empty_total,
            shards: self.shards.clone(),
            interner: self.interner.clone(),
            singleton_any: self.singleton_any.clone(),
            stored: self.stored,
            frozen: AtomicBool::new(false),
        }
    }
}

impl WhatIfCache {
    /// Create a cache for `num_queries` queries over `universe` candidates,
    /// seeded with the empty-configuration costs.
    pub fn new(universe: usize, empty_costs: Vec<f64>) -> Self {
        let m = empty_costs.len();
        let empty_total = empty_costs.iter().sum();
        let num_shards = DEFAULT_SHARDS.min(m.max(1));
        let shards = (0..num_shards)
            .map(|s| CacheShard::new((m + num_shards - 1 - s) / num_shards, universe))
            .collect();
        Self {
            universe,
            empty: empty_costs,
            empty_total,
            shards,
            interner: ConfigInterner::new(),
            singleton_any: IndexSet::empty(universe),
            stored: 0,
            frozen: AtomicBool::new(false),
        }
    }

    /// Create a cache warmed with the empty-configuration baseline costs
    /// of a [`CostSource`]. The baseline calls are unbudgeted and
    /// unobserved — every algorithm and the evaluation metric need them
    /// (DESIGN.md §5).
    pub fn from_source(src: &dyn crate::source::CostSource) -> Self {
        let universe = src.num_candidates();
        let empty = IndexSet::empty(universe);
        let empty_costs: Vec<f64> = (0..src.num_queries())
            .map(|i| src.cost(QueryId::from(i), &empty))
            .collect();
        Self::new(universe, empty_costs)
    }

    #[inline]
    fn slot(&self, qi: usize) -> (&CacheShard, usize) {
        let s = self.shards.len();
        (&self.shards[qi % s], qi / s)
    }

    /// Telemetry: how many cost evaluations were answered by derivation
    /// instead of a stored what-if result.
    pub fn derivations(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.derivations.load(Ordering::Relaxed))
            .sum()
    }

    #[inline]
    fn count_derivation(&self, qi: usize) {
        self.shards[qi % self.shards.len()]
            .derivations
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Bulk-count `n` derivations against `q`'s shard — parallel scan
    /// kernels account one batch per (query, chunk) instead of one atomic
    /// add per probe.
    pub(crate) fn add_derivations(&self, q: QueryId, n: usize) {
        self.shards[q.index() % self.shards.len()]
            .derivations
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Zero the derivation counters — used when a root-parallel worker
    /// starts from a clone of the master cache and must report only its
    /// own activity.
    pub(crate) fn reset_derivations(&self) {
        for s in &self.shards {
            s.derivations.store(0, Ordering::Relaxed);
        }
    }

    /// Enter the read-only phase: parallel enumeration may now share the
    /// cache across threads. Appends after this point are a logic error
    /// (debug-asserted); cloning yields a fresh unfrozen cache.
    pub fn freeze(&self) {
        self.frozen.store(true, Ordering::Release);
    }

    pub fn is_frozen(&self) -> bool {
        self.frozen.load(Ordering::Acquire)
    }

    pub fn universe(&self) -> usize {
        self.universe
    }

    pub fn num_queries(&self) -> usize {
        self.empty.len()
    }

    /// Number of query shards (diagnostics).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// `c(q, ∅)`.
    pub fn empty_cost(&self, q: QueryId) -> f64 {
        self.empty[q.index()]
    }

    /// `cost(W, ∅)` (cached at construction).
    pub fn empty_workload_cost(&self) -> f64 {
        self.empty_total
    }

    /// Exact lookup: the what-if cost if one was recorded for `(q, config)`.
    pub fn get(&self, q: QueryId, config: &IndexSet) -> Option<f64> {
        if config.is_empty() {
            return Some(self.empty[q.index()]);
        }
        let (shard, lq) = self.slot(q.index());
        if config.len() == 1 {
            let id = config.iter().next().unwrap();
            let v = shard.singleton[lq][id.index()];
            return if v.is_nan() { None } else { Some(v) };
        }
        // Nothing of this size (or larger) was ever stored: skip the probe
        // and its bitset hash — the hot case in greedy inner loops.
        if config.len() > shard.max_multi_size[lq] {
            return None;
        }
        self.interner
            .get(config)
            .and_then(|id| shard.exact[lq].get(id))
    }

    /// Record a what-if result. Returns `true` if it was new.
    pub fn put(&mut self, q: QueryId, config: &IndexSet, cost: f64) -> bool {
        if config.is_empty() || self.get(q, config).is_some() {
            return false;
        }
        self.insert_entry(q.index(), config, cost);
        true
    }

    /// Record a what-if result known to be absent — the miss path of
    /// `MeteredWhatIf::what_if`, which already probed [`get`](Self::get)
    /// and so can skip the duplicate check (and its bitset hash).
    pub fn put_new(&mut self, q: QueryId, config: &IndexSet, cost: f64) {
        debug_assert!(!config.is_empty(), "∅ is seeded at construction");
        debug_assert!(
            self.get(q, config).is_none(),
            "put_new on an already-cached entry"
        );
        self.insert_entry(q.index(), config, cost);
    }

    fn insert_entry(&mut self, qi: usize, config: &IndexSet, cost: f64) {
        debug_assert!(
            !self.is_frozen(),
            "append to a frozen cache (write phase is over)"
        );
        let s = self.shards.len();
        let universe = self.universe;
        if config.len() == 1 {
            let (shard, lq) = (&mut self.shards[qi % s], qi / s);
            let id = config.iter().next().unwrap();
            shard.singleton[lq][id.index()] = cost;
            self.singleton_any.insert(id);
        } else {
            let key = self.interner.intern(config);
            let (shard, lq) = (&mut self.shards[qi % s], qi / s);
            shard.exact[lq].insert(key, cost);
            let list = &mut shard.multi[lq];
            let pos = list.partition_point(|(_, c)| *c < cost);
            list.insert(pos, (config.clone(), cost));
            shard.max_multi_size[lq] = shard.max_multi_size[lq].max(config.len());
            // First multi entry for this row: materialize its postings
            // lists (rows start empty — see the field doc).
            if shard.postings[lq].is_empty() {
                shard.postings[lq].resize(universe, Vec::new());
            }
            // Maintain the inverted postings: positions at or past the
            // insertion point shift by one (lists stay sorted), then the
            // new position joins each member's list. Puts are bounded by
            // the budget; probes are not — so this is the cheap side.
            let p = pos as u32;
            for slot in &mut shard.postings[lq] {
                let from = slot.partition_point(|&v| v < p);
                for v in &mut slot[from..] {
                    *v += 1;
                }
            }
            for id in config.iter() {
                let slot = &mut shard.postings[lq][id.index()];
                let at = slot.partition_point(|&v| v < p);
                slot.insert(at, p);
            }
        }
        self.stored += 1;
    }

    /// Known singleton cost `c(q, {id})`, if evaluated.
    pub fn singleton_cost(&self, q: QueryId, id: IndexId) -> Option<f64> {
        let (shard, lq) = self.slot(q.index());
        let v = shard.singleton[lq][id.index()];
        (!v.is_nan()).then_some(v)
    }

    /// Dense singleton row for `q` (`NaN` = unknown) — read side of the
    /// frozen-phase batch kernel.
    pub(crate) fn singleton_row(&self, q: QueryId) -> &[f64] {
        let (shard, lq) = self.slot(q.index());
        &shard.singleton[lq]
    }

    /// Largest multi-entry size stored for `q`.
    pub(crate) fn max_multi_len(&self, q: QueryId) -> usize {
        let (shard, lq) = self.slot(q.index());
        shard.max_multi_size[lq]
    }

    /// Interned id of a multi configuration, if any query ever stored it.
    /// Scan kernels resolve the id once per candidate and then probe every
    /// query's row by integer ([`exact_get_id`](Self::exact_get_id)),
    /// instead of hashing the bitset per `(query, candidate)` cell.
    pub(crate) fn interned_id(&self, config: &IndexSet) -> Option<u32> {
        self.interner.get(config)
    }

    /// Exact-map probe by interned id (see [`interned_id`](Self::interned_id)).
    #[inline]
    pub(crate) fn exact_get_id(&self, q: QueryId, id: u32) -> Option<f64> {
        let (shard, lq) = self.slot(q.index());
        shard.exact[lq].get(id)
    }

    /// Number of distinct multi-entry configurations interned — surfaced
    /// as a daemon gauge next to the warm-store interner size.
    pub fn interned_configs(&self) -> usize {
        self.interner.len()
    }

    /// Candidates that some stored entry can *inform* in an extension scan
    /// of `config`: every `x` with a known singleton cost for any query,
    /// plus every `x` credited by a multi entry whose members outside
    /// `config` are exactly `{x}` (the only entries a postings walk for
    /// `x` accepts, and the only way `C ∪ {x}` can be an exact hit). For
    /// any other candidate, `d(q, C ∪ {x})` equals `d(q, C)` for *every*
    /// query — bit for bit, probe for probe — so frozen scans can price
    /// those candidates as the plain fold of the current per-query costs
    /// without touching their cells.
    pub(crate) fn informed_candidates(&self, config: &IndexSet) -> IndexSet {
        let mut out = self.singleton_any.clone();
        for shard in &self.shards {
            for list in &shard.multi {
                'entries: for (set, _) in list {
                    let mut extra = usize::MAX;
                    for (bi, (&eb, &cb)) in
                        set.as_blocks().iter().zip(config.as_blocks()).enumerate()
                    {
                        let diff = eb & !cb;
                        if diff == 0 {
                            continue;
                        }
                        if extra != usize::MAX || diff & (diff - 1) != 0 {
                            continue 'entries; // ≥ 2 members outside C
                        }
                        extra = bi * 64 + diff.trailing_zeros() as usize;
                    }
                    if extra != usize::MAX {
                        out.insert(IndexId::from(extra));
                    }
                }
            }
        }
        out
    }

    /// Derived cost `d(q, C)` per Eq. 1 (general subsets).
    pub fn derived(&self, q: QueryId, config: &IndexSet) -> f64 {
        let qi = q.index();
        // Exact hit is both the tightest bound and the common case.
        if let Some(c) = self.get(q, config) {
            return c;
        }
        self.count_derivation(qi);
        let (shard, lq) = self.slot(qi);
        let mut best = self.empty[qi];
        // Singleton fast path: members of `config` with known costs.
        for id in config.iter() {
            let v = shard.singleton[lq][id.index()];
            if !v.is_nan() && v < best {
                best = v;
            }
        }
        // Multi-index entries: sorted ascending, so stop once entries can no
        // longer improve.
        for (set, cost) in &shard.multi[lq] {
            if *cost >= best {
                break;
            }
            if set.is_subset(config) {
                best = *cost;
            }
        }
        best
    }

    /// Derived cost restricted to singleton subsets (Eq. 2) — the variant
    /// whose benefit function is provably submodular (Theorem 1).
    pub fn derived_singleton(&self, q: QueryId, config: &IndexSet) -> f64 {
        let qi = q.index();
        self.count_derivation(qi);
        let (shard, lq) = self.slot(qi);
        let mut best = self.empty[qi];
        for id in config.iter() {
            let v = shard.singleton[lq][id.index()];
            if !v.is_nan() && v < best {
                best = v;
            }
        }
        best
    }

    /// Workload-level derived cost `d(W, C) = Σ_q d(q, C)`.
    pub fn derived_workload(&self, config: &IndexSet) -> f64 {
        (0..self.num_queries())
            .map(|i| self.derived(QueryId::from(i), config))
            .sum()
    }

    /// Number of cached what-if results (excluding the free ∅ entries).
    pub fn stored_results(&self) -> usize {
        self.stored
    }

    /// Multi-index entries for `q`, sorted by ascending cost — the raw
    /// material for incremental derivation (see
    /// [`Extraction`](https://docs.rs/ixtune-core)'s fast Best-Greedy path).
    pub fn multi_entries(&self, q: QueryId) -> &[(IndexSet, f64)] {
        let (shard, lq) = self.slot(q.index());
        &shard.multi[lq]
    }

    /// Incremental derivation: `d(q, C ∪ {extra})` given `d(q, C)`.
    ///
    /// Exploits `d(q, C ∪ {x}) = min(d(q,C), c(q,{x}), min over known
    /// entries that contain x and fit in C ∪ {x})`. The inverted postings
    /// narrow the scan to exactly the multi entries containing `extra`, in
    /// ascending-cost order, so the early exit still applies; the subset
    /// test runs block-wise without materializing `set \ {extra}`.
    ///
    /// Returns bit-for-bit the same value as the full scan
    /// ([`derived_with_extra_scan`](Self::derived_with_extra_scan)): both
    /// visit the qualifying entries in the same order and take the same
    /// `min` over the same set of `f64`s.
    pub fn derived_with_extra(
        &self,
        q: QueryId,
        config: &IndexSet,
        extra: IndexId,
        current: f64,
    ) -> f64 {
        self.count_derivation(q.index());
        self.derived_with_extra_uncounted(q, config, extra, current)
    }

    /// The derivation itself, without bumping the telemetry counter —
    /// used to re-price a scan winner whose probes were already accounted
    /// in batch by the parallel kernel.
    pub(crate) fn derived_with_extra_uncounted(
        &self,
        q: QueryId,
        config: &IndexSet,
        extra: IndexId,
        current: f64,
    ) -> f64 {
        let (shard, lq) = self.slot(q.index());
        let mut best = current;
        let s = shard.singleton[lq][extra.index()];
        if !s.is_nan() && s < best {
            best = s;
        }
        let prow = &shard.postings[lq];
        if prow.is_empty() {
            // No multi entries for this row (postings never materialized).
            return best;
        }
        let list = &shard.multi[lq];
        for &pos in &prow[extra.index()] {
            let (set, cost) = &list[pos as usize];
            if *cost >= best {
                break;
            }
            // set ⊆ C ∪ {extra} ⇔ set \ {extra} ⊆ C.
            if set.is_subset_except(config, extra) {
                best = *cost;
            }
        }
        best
    }

    /// Serializable image of the cache for checkpoint/resume.
    ///
    /// Multi-index entries are captured in *stored order* (ascending cost,
    /// ties in insertion order). Restoring replays that order verbatim, so
    /// the rebuilt cache visits entries in exactly the same sequence — a
    /// re-insertion through [`put`](Self::put) would instead place a new
    /// equal-cost entry *before* its ties (`partition_point` on `< cost`)
    /// and silently perturb derived costs.
    pub fn snapshot(&self) -> CacheSnapshot {
        let rows = (0..self.num_queries())
            .map(|qi| {
                let (shard, lq) = self.slot(qi);
                CacheRowSnapshot {
                    // NaN cells mean "unknown" and would not survive JSON
                    // (it has no NaN); store only the known cells.
                    singletons: shard.singleton[lq]
                        .iter()
                        .enumerate()
                        .filter(|(_, v)| !v.is_nan())
                        .map(|(i, &v)| (i as u32, v))
                        .collect(),
                    multi: shard.multi[lq].clone(),
                }
            })
            .collect();
        CacheSnapshot {
            universe: self.universe,
            empty: self.empty.clone(),
            rows,
            derivations: self.derivations(),
        }
    }

    /// Rebuild a cache from a [`snapshot`](Self::snapshot). The result is
    /// unfrozen (a fresh write phase) and answers every `get`/`derived`
    /// probe bit-identically to the snapshotted cache.
    pub fn from_snapshot(s: &CacheSnapshot) -> Result<Self, String> {
        let mut cache = WhatIfCache::new(s.universe, s.empty.clone());
        if s.rows.len() != cache.num_queries() {
            return Err(format!(
                "cache snapshot has {} rows for {} queries",
                s.rows.len(),
                cache.num_queries()
            ));
        }
        let num_shards = cache.shards.len();
        let mut stored = 0usize;
        for (qi, row) in s.rows.iter().enumerate() {
            let (shard, lq) = (&mut cache.shards[qi % num_shards], qi / num_shards);
            for &(id, cost) in &row.singletons {
                let cell = shard.singleton[lq]
                    .get_mut(id as usize)
                    .ok_or_else(|| format!("singleton id {id} outside universe {}", s.universe))?;
                if !cell.is_nan() {
                    return Err(format!("duplicate singleton {id} for query {qi}"));
                }
                *cell = cost;
                cache.singleton_any.insert(IndexId::from(id as usize));
                stored += 1;
            }
            let mut prev = f64::NEG_INFINITY;
            for (pos, (set, cost)) in row.multi.iter().enumerate() {
                if set.universe() != s.universe || set.len() < 2 {
                    return Err(format!("malformed multi entry for query {qi}"));
                }
                if *cost < prev {
                    return Err(format!("multi entries out of cost order for query {qi}"));
                }
                prev = *cost;
                let key = cache.interner.intern(set);
                let (shard, lq) = (&mut cache.shards[qi % num_shards], qi / num_shards);
                if shard.exact[lq].insert(key, *cost).is_some() {
                    return Err(format!("duplicate multi entry for query {qi}"));
                }
                shard.multi[lq].push((set.clone(), *cost));
                shard.max_multi_size[lq] = shard.max_multi_size[lq].max(set.len());
                if shard.postings[lq].is_empty() {
                    shard.postings[lq].resize(s.universe, Vec::new());
                }
                // Positions are appended in ascending order, so every
                // postings list comes out sorted without shifting.
                for id in set.iter() {
                    shard.postings[lq][id.index()].push(pos as u32);
                }
                stored += 1;
            }
        }
        cache.stored = stored;
        // Per-shard derivation counters only ever surface as their sum
        // (telemetry), so the restored total lives in shard 0.
        cache.shards[0].derivations = AtomicUsize::new(s.derivations);
        Ok(cache)
    }

    /// Reference implementation of [`derived_with_extra`](Self::derived_with_extra)
    /// that scans every multi entry instead of the postings. Kept as the
    /// equivalence oracle for the proptest and the before/after benchmark.
    pub fn derived_with_extra_scan(
        &self,
        q: QueryId,
        config: &IndexSet,
        extra: IndexId,
        current: f64,
    ) -> f64 {
        let qi = q.index();
        self.count_derivation(qi);
        let (shard, lq) = self.slot(qi);
        let mut best = current;
        let s = shard.singleton[lq][extra.index()];
        if !s.is_nan() && s < best {
            best = s;
        }
        for (set, cost) in &shard.multi[lq] {
            if *cost >= best {
                break;
            }
            if set.contains(extra) && set.without(extra).is_subset(config) {
                best = *cost;
            }
        }
        best
    }
}

/// On-disk image of a [`WhatIfCache`] (see [`WhatIfCache::snapshot`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CacheSnapshot {
    universe: usize,
    empty: Vec<f64>,
    rows: Vec<CacheRowSnapshot>,
    derivations: usize,
}

impl CacheSnapshot {
    /// Candidate universe the snapshotted cache ranges over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of workload queries in the snapshotted cache.
    pub fn num_queries(&self) -> usize {
        self.empty.len()
    }
}

/// One query's cached entries: known singleton cells and multi-index
/// entries in stored (ascending-cost) order.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct CacheRowSnapshot {
    singletons: Vec<(u32, f64)>,
    multi: Vec<(IndexSet, f64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(universe: usize, ids: &[u32]) -> IndexSet {
        IndexSet::from_ids(universe, ids.iter().copied().map(IndexId::new))
    }

    fn cache() -> WhatIfCache {
        WhatIfCache::new(4, vec![100.0, 200.0])
    }

    #[test]
    fn empty_costs_always_known() {
        let c = cache();
        let empty = IndexSet::empty(4);
        assert_eq!(c.get(QueryId::new(0), &empty), Some(100.0));
        assert_eq!(c.derived(QueryId::new(1), &empty), 200.0);
        assert_eq!(c.empty_workload_cost(), 300.0);
    }

    #[test]
    fn derived_without_entries_is_empty_cost() {
        let c = cache();
        assert_eq!(c.derived(QueryId::new(0), &set(4, &[0, 1, 2])), 100.0);
    }

    #[test]
    fn singleton_path() {
        let mut c = cache();
        let q = QueryId::new(0);
        assert!(c.put(q, &set(4, &[1]), 40.0));
        assert!(!c.put(q, &set(4, &[1]), 39.0), "duplicate ignored");
        assert_eq!(c.get(q, &set(4, &[1])), Some(40.0));
        assert_eq!(c.singleton_cost(q, IndexId::new(1)), Some(40.0));
        assert_eq!(c.singleton_cost(q, IndexId::new(2)), None);
        // Supersets derive the singleton bound.
        assert_eq!(c.derived(q, &set(4, &[0, 1])), 40.0);
        assert_eq!(c.derived_singleton(q, &set(4, &[0, 1])), 40.0);
        // Disjoint configs do not.
        assert_eq!(c.derived(q, &set(4, &[0, 2])), 100.0);
    }

    #[test]
    fn multi_entry_subset_scan() {
        let mut c = cache();
        let q = QueryId::new(0);
        c.put(q, &set(4, &[0, 1]), 30.0);
        c.put(q, &set(4, &[2, 3]), 20.0);
        c.put(q, &set(4, &[0]), 50.0);
        // {0,1,2} ⊇ {0,1} but not {2,3}.
        assert_eq!(c.derived(q, &set(4, &[0, 1, 2])), 30.0);
        // Full set gets the cheapest entry.
        assert_eq!(c.derived(q, &set(4, &[0, 1, 2, 3])), 20.0);
        // Exact hit returns the exact value.
        assert_eq!(c.derived(q, &set(4, &[2, 3])), 20.0);
        // Singleton-only derivation ignores pairs.
        assert_eq!(c.derived_singleton(q, &set(4, &[0, 1, 2, 3])), 50.0);
    }

    #[test]
    fn derived_is_upper_bound_and_tightens() {
        let mut c = cache();
        let q = QueryId::new(0);
        let cfg = set(4, &[0, 1, 2]);
        let d0 = c.derived(q, &cfg);
        c.put(q, &set(4, &[1]), 70.0);
        let d1 = c.derived(q, &cfg);
        c.put(q, &set(4, &[0, 1]), 55.0);
        let d2 = c.derived(q, &cfg);
        c.put(q, &cfg, 42.0);
        let d3 = c.derived(q, &cfg);
        assert!(d0 >= d1 && d1 >= d2 && d2 >= d3);
        assert_eq!(d3, 42.0);
    }

    #[test]
    fn workload_derivation_sums() {
        let mut c = cache();
        c.put(QueryId::new(0), &set(4, &[0]), 10.0);
        c.put(QueryId::new(1), &set(4, &[0]), 150.0);
        assert_eq!(c.derived_workload(&set(4, &[0])), 160.0);
        assert_eq!(c.derived_workload(&set(4, &[3])), 300.0);
    }

    #[test]
    fn with_extra_matches_scan_and_full_derivation() {
        let mut c = cache();
        let q = QueryId::new(0);
        // Out-of-cost-order inserts force postings shifts.
        c.put(q, &set(4, &[0, 1]), 30.0);
        c.put(q, &set(4, &[1, 2]), 25.0);
        c.put(q, &set(4, &[0, 2, 3]), 20.0);
        c.put(q, &set(4, &[2]), 60.0);
        for cfg in [set(4, &[]), set(4, &[0]), set(4, &[0, 3]), set(4, &[1, 2])] {
            let cur = c.derived(q, &cfg);
            for x in 0..4 {
                let extra = IndexId::new(x);
                if cfg.contains(extra) {
                    continue;
                }
                let fast = c.derived_with_extra(q, &cfg, extra, cur);
                let slow = c.derived_with_extra_scan(q, &cfg, extra, cur);
                let full = c.derived(q, &cfg.with(extra));
                assert_eq!(fast, slow, "cfg={cfg:?} extra={x}");
                assert_eq!(fast, full, "cfg={cfg:?} extra={x}");
            }
        }
    }

    #[test]
    fn put_new_behaves_like_put() {
        let mut a = cache();
        let mut b = cache();
        let q = QueryId::new(0);
        let entries = [
            (set(4, &[0, 1]), 30.0),
            (set(4, &[2, 3]), 20.0),
            (set(4, &[1, 2, 3]), 25.0),
            (set(4, &[3]), 50.0),
        ];
        for (cfg, cost) in &entries {
            assert!(a.put(q, cfg, *cost));
            b.put_new(q, cfg, *cost);
        }
        assert_eq!(a.stored_results(), b.stored_results());
        for cfg in [
            set(4, &[0, 1, 2]),
            set(4, &[1, 2, 3]),
            set(4, &[0, 1, 2, 3]),
        ] {
            assert_eq!(a.derived(q, &cfg), b.derived(q, &cfg));
        }
    }

    #[test]
    fn stored_counts_unique_entries() {
        let mut c = cache();
        let q = QueryId::new(0);
        c.put(q, &set(4, &[0]), 1.0);
        c.put(q, &set(4, &[0]), 2.0);
        c.put(q, &set(4, &[0, 1]), 3.0);
        assert_eq!(c.stored_results(), 2);
    }

    #[test]
    fn sharded_routing_is_transparent() {
        // More queries than shards: rows land in every shard and wrap.
        let m = 19;
        let empties: Vec<f64> = (0..m).map(|q| 100.0 + q as f64).collect();
        let mut c = WhatIfCache::new(6, empties.clone());
        assert_eq!(c.num_shards(), 8);
        for q in 0..m {
            let qid = QueryId::from(q);
            c.put(qid, &set(6, &[(q % 6) as u32]), 10.0 + q as f64);
            c.put(qid, &set(6, &[0, ((q % 5) + 1) as u32]), 5.0 + q as f64);
        }
        for (q, &empty) in empties.iter().enumerate() {
            let qid = QueryId::from(q);
            assert_eq!(c.empty_cost(qid), empty);
            assert_eq!(
                c.get(qid, &set(6, &[(q % 6) as u32])),
                Some(10.0 + q as f64)
            );
            assert_eq!(
                c.get(qid, &set(6, &[0, ((q % 5) + 1) as u32])),
                Some(5.0 + q as f64)
            );
            // Full set derives each query's cheapest entry.
            assert_eq!(c.derived(qid, &IndexSet::full(6)), 5.0 + q as f64);
        }
        assert_eq!(c.stored_results(), 2 * m);
    }

    #[test]
    fn freeze_latches_and_clone_unfreezes() {
        let mut c = cache();
        c.put(QueryId::new(0), &set(4, &[0]), 10.0);
        assert!(!c.is_frozen());
        c.freeze();
        assert!(c.is_frozen());
        // Reads still work and still count derivations.
        let before = c.derivations();
        assert_eq!(c.derived(QueryId::new(0), &set(4, &[0, 1])), 10.0);
        assert_eq!(c.derivations(), before + 1);
        // A clone starts a new write phase with the same contents.
        let mut d = c.clone();
        assert!(!d.is_frozen());
        assert!(d.put(QueryId::new(0), &set(4, &[1]), 9.0));
        assert_eq!(d.get(QueryId::new(0), &set(4, &[0])), Some(10.0));
    }

    #[test]
    fn snapshot_roundtrip_preserves_answers_bit_for_bit() {
        let m = 11usize;
        let empties: Vec<f64> = (0..m).map(|q| 100.0 + q as f64).collect();
        let mut c = WhatIfCache::new(6, empties);
        // Include cost ties so stored order (not re-insertion order) is
        // what the restore must reproduce, plus out-of-order inserts.
        for q in 0..m {
            let qid = QueryId::from(q);
            c.put(qid, &set(6, &[(q % 6) as u32]), 10.0 + q as f64);
            c.put(qid, &set(6, &[0, 1]), 50.0);
            c.put(qid, &set(6, &[2, 3]), 50.0);
            c.put(qid, &set(6, &[1, 4, 5]), 42.0 + q as f64);
        }
        c.add_derivations(QueryId::new(0), 17);

        let snap = c.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: CacheSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap, "snapshot survives JSON");
        let r = WhatIfCache::from_snapshot(&back).unwrap();

        assert_eq!(r.stored_results(), c.stored_results());
        assert_eq!(r.derivations(), c.derivations());
        assert!(!r.is_frozen());
        for q in 0..m {
            let qid = QueryId::from(q);
            assert_eq!(r.empty_cost(qid).to_bits(), c.empty_cost(qid).to_bits());
            for cfg in [
                set(6, &[0, 1, 2, 3]),
                set(6, &[1, 4, 5]),
                set(6, &[(q % 6) as u32, 5]),
                IndexSet::full(6),
            ] {
                assert_eq!(
                    r.derived(qid, &cfg).to_bits(),
                    c.derived(qid, &cfg).to_bits(),
                    "q={q} cfg={cfg:?}"
                );
                let cur = c.derived(qid, &cfg);
                for x in 0..6 {
                    let extra = IndexId::new(x);
                    if cfg.contains(extra) {
                        continue;
                    }
                    assert_eq!(
                        r.derived_with_extra(qid, &cfg, extra, cur).to_bits(),
                        c.derived_with_extra(qid, &cfg, extra, cur).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn from_snapshot_rejects_corruption() {
        let mut c = cache();
        c.put(QueryId::new(0), &set(4, &[0]), 20.0);
        c.put(QueryId::new(0), &set(4, &[0, 1]), 30.0);
        let snap = c.snapshot();
        assert!(
            WhatIfCache::from_snapshot(&snap).is_ok(),
            "baseline restores"
        );

        // Universe mismatch between the header and a stored multi entry.
        let mut bad = snap.clone();
        bad.universe = 5;
        assert!(WhatIfCache::from_snapshot(&bad).is_err());

        // Singleton id outside the universe.
        let mut bad = snap.clone();
        bad.rows[0].singletons[0].0 = 99;
        assert!(WhatIfCache::from_snapshot(&bad).is_err());

        // Duplicate singleton entry.
        let mut bad = snap.clone();
        let dup = bad.rows[0].singletons[0];
        bad.rows[0].singletons.push(dup);
        assert!(WhatIfCache::from_snapshot(&bad).is_err());

        // Multi entries must stay in non-decreasing cost order.
        let mut bad = snap.clone();
        bad.rows[0].multi.push((set(4, &[2, 3]), 1.0));
        assert!(WhatIfCache::from_snapshot(&bad).is_err());

        // Row count must match the workload size.
        let mut bad = snap.clone();
        bad.rows.pop();
        assert!(WhatIfCache::from_snapshot(&bad).is_err());
    }

    #[test]
    fn derivation_counters_batch_and_reset() {
        let c = cache();
        c.add_derivations(QueryId::new(0), 7);
        c.add_derivations(QueryId::new(1), 3);
        assert_eq!(c.derivations(), 10);
        let d = c.clone();
        assert_eq!(d.derivations(), 10, "clone carries counters");
        d.reset_derivations();
        assert_eq!(d.derivations(), 0);
        assert_eq!(c.derivations(), 10, "reset is per-instance");
    }
}
