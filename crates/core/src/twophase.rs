//! Two-phase greedy search (Algorithm 2 of the paper, from AutoAdmin).
//!
//! Phase 1 tunes every query as a singleton workload over its own candidate
//! indexes; phase 2 re-runs greedy for the whole workload over the union of
//! the per-query winners. With FCFS budget allocation this fills the budget
//! allocation matrix column-major first (Figure 5(c)).

use crate::budget::MeteredWhatIf;
use crate::derivation_state::DerivationState;
use crate::greedy::{greedy_enumerate_incremental, greedy_enumerate_metered, MeteredEval};
use crate::matrix::Layout;
use crate::stop::{Interrupt, StopSignal};
use crate::tuner::{Constraints, Tuner, TuningContext, TuningRequest, TuningResult};
use ixtune_common::sync::effective_threads;
use ixtune_common::{IndexId, IndexSet, QueryId};

/// Two-phase greedy with FCFS budget allocation.
#[derive(Clone, Copy, Debug, Default)]
pub struct TwoPhaseGreedy;

impl TwoPhaseGreedy {
    /// Phase 1: per-query tuning; returns the union of per-query winners.
    /// Exposed for reuse by the AutoAdmin variant. `mode` selects how an
    /// extension `C ∪ {extra}` is priced (see
    /// [`greedy_enumerate_metered`]). The per-query scans are tiny, so
    /// they stay below the parallel-work threshold in practice; `threads`
    /// is passed through for uniformity.
    /// An interrupt mid-phase-1 returns the partial union built so far —
    /// the caller salvages a configuration from it without further
    /// what-if calls.
    pub(crate) fn phase1(
        ctx: &TuningContext<'_>,
        constraints: &Constraints,
        mw: &mut MeteredWhatIf<'_>,
        mode: MeteredEval<'_>,
        threads: usize,
        stop: &StopSignal,
    ) -> (Vec<IndexId>, Option<Interrupt>) {
        let universe = ctx.universe();
        let empty = IndexSet::empty(universe);
        let mut union: Vec<IndexId> = Vec::new();
        for qi in 0..ctx.num_queries() {
            let q = QueryId::from(qi);
            let pool = ctx.cands.for_query(q);
            let init = vec![mw.cost_fcfs(q, &empty)];
            let mut state = DerivationState::for_queries(universe, vec![q], init);
            let (best, interrupt) = greedy_enumerate_metered(
                ctx,
                constraints,
                pool,
                &mut state,
                mw,
                mode,
                threads,
                stop,
            );
            for id in best.iter() {
                if !union.contains(&id) {
                    union.push(id);
                }
            }
            if interrupt.is_some() {
                return (union, interrupt);
            }
        }
        (union, None)
    }

    /// Budget-free salvage used when phase 1 was interrupted: greedy over
    /// the (partial) union priced purely by cost derivation — no further
    /// what-if calls, so the budget meter and the layout stay exactly as
    /// interrupted.
    pub(crate) fn salvage(
        ctx: &TuningContext<'_>,
        constraints: &Constraints,
        union: &[IndexId],
        mw: &MeteredWhatIf<'_>,
    ) -> IndexSet {
        let universe = ctx.universe();
        let queries: Vec<QueryId> = (0..ctx.num_queries()).map(QueryId::from).collect();
        let init: Vec<f64> = queries.iter().map(|&q| mw.cache().empty_cost(q)).collect();
        let mut state = DerivationState::for_queries(universe, queries, init);
        greedy_enumerate_incremental(ctx, constraints, union, &mut state, |q, c, x, cur| {
            mw.cache().derived_with_extra(q, c, x, cur)
        })
    }
}

impl Tuner for TwoPhaseGreedy {
    fn name(&self) -> String {
        "Two-phase Greedy".into()
    }

    fn tune(&self, ctx: &TuningContext<'_>, req: &TuningRequest) -> TuningResult {
        self.tune_with_stop(ctx, req, &StopSignal::never())
    }

    fn tune_with_stop(
        &self,
        ctx: &TuningContext<'_>,
        req: &TuningRequest,
        stop: &StopSignal,
    ) -> TuningResult {
        let constraints = &req.constraints;
        let threads = effective_threads(req.session_threads);
        let src = ctx.source();
        let mut mw = MeteredWhatIf::new(&src, req.budget);
        let obs = ctx.obs().clone();

        // Phase 1: each query as its own workload.
        let p1_t0 = obs.span_start();
        let (union, mut interrupt) =
            Self::phase1(ctx, constraints, &mut mw, MeteredEval::Fcfs, threads, stop);
        if let Some(t0) = p1_t0 {
            obs.span_end(
                t0,
                "phase1",
                "twophase",
                vec![("union".into(), union.len().to_string())],
            );
        }

        let config = if interrupt.is_some() {
            // Interrupted mid-phase-1: salvage from the partial union
            // without spending more budget.
            let t0 = obs.span_start();
            let config = Self::salvage(ctx, constraints, &union, &mw);
            if let Some(t0) = t0 {
                obs.span_end(t0, "salvage", "twophase", vec![]);
            }
            config
        } else {
            // Phase 2: workload-level greedy over the refined candidate set.
            let t0 = obs.span_start();
            let universe = ctx.universe();
            let empty = IndexSet::empty(universe);
            let queries: Vec<QueryId> = (0..ctx.num_queries()).map(QueryId::from).collect();
            let init: Vec<f64> = queries.iter().map(|&q| mw.cost_fcfs(q, &empty)).collect();
            let mut state = DerivationState::for_queries(universe, queries, init);
            let (config, i2) = greedy_enumerate_metered(
                ctx,
                constraints,
                &union,
                &mut state,
                &mut mw,
                MeteredEval::Fcfs,
                threads,
                stop,
            );
            if let Some(t0) = t0 {
                obs.span_end(t0, "phase2", "twophase", vec![]);
            }
            interrupt = i2;
            config
        };
        mw.publish_obs();
        let used = mw.meter().used();
        let reason = mw.stop_reason(interrupt);
        let mut telemetry = mw.telemetry();
        telemetry.session_threads = threads;
        TuningResult::evaluate(self.name(), ctx, config, used, Layout::new(mw.into_trace()))
            .with_telemetry(telemetry)
            .with_stop_reason(reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::VanillaGreedy;
    use ixtune_candidates::{generate_default, CandidateSet};
    use ixtune_optimizer::{CostModel, SimulatedOptimizer};
    use ixtune_workload::gen::{synth, tpch};

    fn setup(seed: u64) -> (SimulatedOptimizer, CandidateSet) {
        let inst = synth::instance(seed);
        let cands = generate_default(&inst);
        let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
        (opt, cands)
    }

    #[test]
    fn respects_budget_and_cardinality() {
        let (opt, cands) = setup(11);
        let ctx = TuningContext::new(&opt, &cands);
        for (budget, k) in [(0usize, 2usize), (7, 1), (100, 3)] {
            let r = TwoPhaseGreedy.tune(&ctx, &TuningRequest::cardinality(k, budget));
            assert!(r.calls_used <= budget);
            assert!(r.config.len() <= k);
        }
    }

    #[test]
    fn early_budget_goes_to_early_queries() {
        // With a small budget, phase 1 touches the first queries only —
        // the column-major pattern of Figure 5(c).
        let inst = tpch::generate(1.0);
        let cands = generate_default(&inst);
        let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
        let ctx = TuningContext::new(&opt, &cands);
        let r = TwoPhaseGreedy.tune(&ctx, &TuningRequest::cardinality(5, 20));
        let queries_touched = r.layout.distinct_queries();
        assert!(
            queries_touched <= 5,
            "small budget should reach few queries, got {queries_touched}"
        );
    }

    #[test]
    fn beats_or_matches_vanilla_at_small_budget_on_tpch() {
        // The motivating observation of §4.2.2: per-query tuning spreads
        // information better than row-major FCFS at tight budgets.
        let inst = tpch::generate(1.0);
        let cands = generate_default(&inst);
        let opt = SimulatedOptimizer::new(inst, cands.indexes.clone(), CostModel::default());
        let ctx = TuningContext::new(&opt, &cands);
        let req = TuningRequest::cardinality(10, 100);
        let two = TwoPhaseGreedy.tune(&ctx, &req).improvement;
        let one = VanillaGreedy.tune(&ctx, &req).improvement;
        assert!(
            two >= one - 0.02,
            "two-phase {two} should not lose badly to vanilla {one} at B=100"
        );
    }

    #[test]
    fn unlimited_budget_finds_improvement() {
        let (opt, cands) = setup(13);
        let ctx = TuningContext::new(&opt, &cands);
        let r = TwoPhaseGreedy.tune(&ctx, &TuningRequest::cardinality(5, 1_000_000));
        assert!(r.improvement >= 0.0);
        // Phase-2 pool is a union of per-query winners: all members of the
        // final config must be candidates of at least one query.
        for id in r.config.iter() {
            let attributed =
                (0..ctx.num_queries()).any(|q| ctx.cands.for_query(QueryId::from(q)).contains(&id));
            assert!(attributed);
        }
    }
}
