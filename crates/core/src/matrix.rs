//! The budget allocation matrix and layouts (§3.2 of the paper).
//!
//! Conceptually `B` is a `(2^|I| − 1) × |W|` 0/1 matrix; materializing it is
//! neither possible nor necessary. What an enumeration algorithm actually
//! produces is a **layout**: the ordered list of `(configuration, query)`
//! cells that received what-if calls. [`Layout`] wraps the trace recorded by
//! [`MeteredWhatIf`](crate::budget::MeteredWhatIf) and provides the summary
//! views used to study allocation behaviour (how many distinct
//! configurations/queries were touched, row-major versus column-major fill
//! patterns — Figure 5).

use ixtune_common::{IndexSet, QueryId};
use std::collections::{BTreeMap, BTreeSet};

/// An ordered record of budget-consuming what-if calls.
#[derive(Clone, Debug, Default)]
pub struct Layout {
    cells: Vec<(QueryId, IndexSet)>,
}

impl Layout {
    pub fn new(cells: Vec<(QueryId, IndexSet)>) -> Self {
        Self { cells }
    }

    /// Number of what-if calls in the layout (equals budget used).
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    pub fn cells(&self) -> &[(QueryId, IndexSet)] {
        &self.cells
    }

    /// Distinct configurations (matrix rows) that received at least one call.
    pub fn distinct_configurations(&self) -> usize {
        let set: BTreeSet<Vec<u32>> = self
            .cells
            .iter()
            .map(|(_, c)| c.iter().map(|i| i.0).collect())
            .collect();
        set.len()
    }

    /// Distinct queries (matrix columns) that received at least one call.
    pub fn distinct_queries(&self) -> usize {
        let set: BTreeSet<QueryId> = self.cells.iter().map(|(q, _)| *q).collect();
        set.len()
    }

    /// Calls per configuration size — e.g. the AutoAdmin variant only fills
    /// cells for atomic sizes.
    pub fn calls_by_config_size(&self) -> BTreeMap<usize, usize> {
        let mut m = BTreeMap::new();
        for (_, c) in &self.cells {
            *m.entry(c.len()).or_insert(0) += 1;
        }
        m
    }

    /// Order-sensitive FNV-1a digest over the cells. Two layouts built
    /// from the same call sequence hash equal; any reordering, insertion,
    /// or change of a configuration changes the digest (with the usual
    /// 64-bit-hash caveat). The service reports this instead of shipping
    /// whole layouts over the wire, and the resume tests compare it to
    /// prove an interrupted-then-resumed session spent its budget on
    /// exactly the same cells in exactly the same order.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |byte: u8| {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        };
        for (q, c) in &self.cells {
            for b in q.0.to_le_bytes() {
                eat(b);
            }
            // Separator so (q, {}) followed by {1} can't collide with
            // (q, {1}) followed by {}.
            eat(0xff);
            for id in c.iter() {
                for b in id.0.to_le_bytes() {
                    eat(b);
                }
            }
            eat(0xfe);
        }
        h
    }

    /// Calls per query.
    pub fn calls_by_query(&self) -> BTreeMap<QueryId, usize> {
        let mut m = BTreeMap::new();
        for (q, _) in &self.cells {
            *m.entry(*q).or_insert(0) += 1;
        }
        m
    }

    /// Whether the layout is *row-major*: all calls for one configuration
    /// are contiguous (the vanilla-greedy FCFS pattern, Figure 5(b)).
    pub fn is_row_major(&self) -> bool {
        let mut seen: BTreeSet<Vec<u32>> = BTreeSet::new();
        let mut current: Option<Vec<u32>> = None;
        for (_, c) in &self.cells {
            let key: Vec<u32> = c.iter().map(|i| i.0).collect();
            if current.as_ref() != Some(&key) {
                if seen.contains(&key) {
                    return false;
                }
                seen.insert(key.clone());
                current = Some(key);
            }
        }
        true
    }

    /// Whether the layout is *column-major*: all calls for one query are
    /// contiguous (the two-phase first-phase pattern, Figure 5(c)).
    pub fn is_column_major(&self) -> bool {
        let mut seen: BTreeSet<QueryId> = BTreeSet::new();
        let mut current: Option<QueryId> = None;
        for (q, _) in &self.cells {
            if current != Some(*q) {
                if seen.contains(q) {
                    return false;
                }
                seen.insert(*q);
                current = Some(*q);
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ixtune_common::IndexId;

    fn s(ids: &[u32]) -> IndexSet {
        IndexSet::from_ids(8, ids.iter().copied().map(IndexId::new))
    }

    fn q(i: u32) -> QueryId {
        QueryId::new(i)
    }

    #[test]
    fn summaries() {
        let layout = Layout::new(vec![
            (q(0), s(&[0])),
            (q(1), s(&[0])),
            (q(0), s(&[1])),
            (q(0), s(&[0, 1])),
        ]);
        assert_eq!(layout.len(), 4);
        assert_eq!(layout.distinct_configurations(), 3);
        assert_eq!(layout.distinct_queries(), 2);
        assert_eq!(layout.calls_by_config_size()[&1], 3);
        assert_eq!(layout.calls_by_config_size()[&2], 1);
        assert_eq!(layout.calls_by_query()[&q(0)], 3);
    }

    #[test]
    fn row_major_detection() {
        let rm = Layout::new(vec![
            (q(0), s(&[0])),
            (q(1), s(&[0])),
            (q(0), s(&[1])),
            (q(1), s(&[1])),
        ]);
        assert!(rm.is_row_major());
        assert!(!rm.is_column_major());

        let not_rm = Layout::new(vec![
            (q(0), s(&[0])),
            (q(0), s(&[1])),
            (q(1), s(&[0])), // returns to row {0}
        ]);
        assert!(!not_rm.is_row_major());
    }

    #[test]
    fn column_major_detection() {
        let cm = Layout::new(vec![(q(0), s(&[0])), (q(0), s(&[1])), (q(1), s(&[0]))]);
        assert!(cm.is_column_major());
        let not_cm = Layout::new(vec![(q(0), s(&[0])), (q(1), s(&[0])), (q(0), s(&[1]))]);
        assert!(!not_cm.is_column_major());
    }

    #[test]
    fn empty_layout_is_trivially_both() {
        let l = Layout::default();
        assert!(l.is_row_major() && l.is_column_major());
        assert_eq!(l.distinct_configurations(), 0);
    }

    #[test]
    fn fingerprint_is_order_and_content_sensitive() {
        let a = Layout::new(vec![(q(0), s(&[0])), (q(1), s(&[0, 1]))]);
        let same = Layout::new(vec![(q(0), s(&[0])), (q(1), s(&[0, 1]))]);
        assert_eq!(a.fingerprint(), same.fingerprint());

        let reordered = Layout::new(vec![(q(1), s(&[0, 1])), (q(0), s(&[0]))]);
        assert_ne!(a.fingerprint(), reordered.fingerprint());

        let different = Layout::new(vec![(q(0), s(&[0])), (q(1), s(&[1]))]);
        assert_ne!(a.fingerprint(), different.fingerprint());

        // The separator keeps cell boundaries unambiguous.
        let shifted = Layout::new(vec![(q(0), s(&[])), (q(1), s(&[0, 0, 1]))]);
        assert_ne!(a.fingerprint(), shifted.fingerprint());
        assert_ne!(Layout::default().fingerprint(), a.fingerprint());
    }
}
