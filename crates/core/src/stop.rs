//! Cooperative interruption of tuning sessions.
//!
//! A [`StopSignal`] is handed to a tuner ([`Tuner::tune_with_stop`]) and
//! polled at enumeration-step / MCTS-episode boundaries. It carries a
//! cancel/suspend flag, an optional wall-clock deadline, and optional
//! deterministic call-count triggers (used by tests and the service smoke
//! test so interruption lands at a reproducible point in the search). A
//! never-stop signal costs nothing to poll, so batch runs that don't use
//! the service pay no overhead.
//!
//! Tuners never abort: on interruption they stop searching, salvage the
//! best configuration found so far, and report why they stopped via
//! [`StopReason`] in [`TuningResult`]. MCTS additionally supports
//! suspension: instead of finishing, it captures a checkpoint from which
//! the session resumes bit-identically (see `checkpoint`).
//!
//! [`Tuner::tune_with_stop`]: crate::tuner::Tuner::tune_with_stop
//! [`TuningResult`]: crate::tuner::TuningResult

use crate::budget::SessionTelemetry;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Why a tuning session stopped. Attached to every
/// [`TuningResult`](crate::tuner::TuningResult).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The algorithm reached its own stopping rule (greedy fixpoint, MCTS
    /// idle streak) with budget to spare.
    Completed,
    /// A cancel (or non-resumable suspend) request stopped the search;
    /// the result is the best configuration found so far.
    Cancelled,
    /// The wall-clock deadline passed; best-so-far result.
    Deadline,
    /// The what-if budget `B` was fully consumed — the natural terminal
    /// state of budget-aware tuning.
    BudgetExhausted,
    /// The what-if source started failing mid-search; the session salvaged
    /// a result through derivation-only enumeration (the remaining budget
    /// was forfeited, every later cost came from Eq. 1 derivation). The
    /// result is still a valid configuration within the constraints.
    Degraded,
}

impl StopReason {
    /// Map an optional interruption plus the meter state to the reason
    /// reported on a finished result. `Suspended` maps to `Cancelled`
    /// here because a result only surfaces a suspend when the tuner
    /// cannot checkpoint (it stops best-so-far instead).
    pub fn from_interrupt(interrupt: Option<Interrupt>, budget_exhausted: bool) -> Self {
        match interrupt {
            Some(Interrupt::Cancelled | Interrupt::Suspended) => StopReason::Cancelled,
            Some(Interrupt::Deadline) => StopReason::Deadline,
            None if budget_exhausted => StopReason::BudgetExhausted,
            None => StopReason::Completed,
        }
    }
}

/// What a [`StopSignal::poll`] observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interrupt {
    /// Stop and return best-so-far.
    Cancelled,
    /// The deadline passed; stop and return best-so-far.
    Deadline,
    /// Checkpoint and park the session if the tuner supports it,
    /// otherwise treated like a cancel.
    Suspended,
}

/// Progress published by a running tuner, readable from other threads
/// (the service's `status` command streams this).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Progress {
    /// Live telemetry snapshot.
    pub telemetry: SessionTelemetry,
    /// Best derived-cost improvement found so far (fraction in `[0, 1]`).
    pub best_improvement: f64,
}

#[derive(Debug, Default)]
struct StopState {
    /// 0 = run, 1 = cancel, 2 = suspend.
    flag: AtomicU8,
    deadline: Option<Instant>,
    cancel_after_calls: Option<usize>,
    suspend_after_calls: Option<usize>,
    progress: Mutex<Option<Progress>>,
}

const RUN: u8 = 0;
const CANCEL: u8 = 1;
const SUSPEND: u8 = 2;

/// Shared handle for interrupting a tuning session (clone freely; all
/// clones observe the same state). [`StopSignal::never`] (also `Default`)
/// is a disarmed signal whose `poll` is a constant `None`.
#[derive(Clone, Debug, Default)]
pub struct StopSignal {
    state: Option<Arc<StopState>>,
}

impl StopSignal {
    /// A signal that never fires — the implicit signal of `Tuner::tune`.
    pub fn never() -> Self {
        Self { state: None }
    }

    /// An armed signal with no deadline or triggers; interruption comes
    /// from [`cancel`](Self::cancel) / [`request_suspend`](Self::request_suspend).
    pub fn armed() -> Self {
        Self {
            state: Some(Arc::new(StopState::default())),
        }
    }

    fn configure(&mut self, f: impl FnOnce(&mut StopState)) {
        let arc = self
            .state
            .get_or_insert_with(|| Arc::new(StopState::default()));
        let st = Arc::get_mut(arc).expect("configure StopSignal before sharing it");
        f(st);
    }

    /// Arm a wall-clock deadline `d` from now.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.configure(|st| st.deadline = Some(Instant::now() + d));
        self
    }

    /// Deterministic cancel: fires once the session has consumed at least
    /// `calls` what-if calls. Test/smoke hook.
    pub fn cancel_after_calls(mut self, calls: usize) -> Self {
        self.configure(|st| st.cancel_after_calls = Some(calls));
        self
    }

    /// Deterministic suspend: fires once the session has consumed at
    /// least `calls` what-if calls. Test/smoke hook.
    pub fn suspend_after_calls(mut self, calls: usize) -> Self {
        self.configure(|st| st.suspend_after_calls = Some(calls));
        self
    }

    /// Whether this signal can ever fire.
    pub fn is_armed(&self) -> bool {
        self.state.is_some()
    }

    /// Request cancellation (idempotent; cancel wins over suspend).
    pub fn cancel(&self) {
        if let Some(st) = &self.state {
            st.flag.store(CANCEL, Ordering::Relaxed);
        }
    }

    /// Request suspension. Ignored if a cancel was already requested.
    pub fn request_suspend(&self) {
        if let Some(st) = &self.state {
            let _ = st
                .flag
                .compare_exchange(RUN, SUSPEND, Ordering::Relaxed, Ordering::Relaxed);
        }
    }

    /// Poll at a step/episode boundary. `calls_used` is the session's
    /// budget consumption so far (drives the deterministic triggers).
    #[inline]
    pub fn poll(&self, calls_used: usize) -> Option<Interrupt> {
        let st = self.state.as_ref()?;
        match st.flag.load(Ordering::Relaxed) {
            CANCEL => return Some(Interrupt::Cancelled),
            SUSPEND => return Some(Interrupt::Suspended),
            _ => {}
        }
        if let Some(n) = st.cancel_after_calls {
            if calls_used >= n {
                return Some(Interrupt::Cancelled);
            }
        }
        if let Some(n) = st.suspend_after_calls {
            if calls_used >= n {
                return Some(Interrupt::Suspended);
            }
        }
        if let Some(d) = st.deadline {
            if Instant::now() >= d {
                return Some(Interrupt::Deadline);
            }
        }
        None
    }

    /// Publish a progress snapshot for observers. No-op when disarmed.
    pub fn publish(&self, telemetry: SessionTelemetry, best_improvement: f64) {
        if let Some(st) = &self.state {
            *st.progress.lock().unwrap() = Some(Progress {
                telemetry,
                best_improvement,
            });
        }
    }

    /// Latest published progress, if any.
    pub fn progress(&self) -> Option<Progress> {
        self.state
            .as_ref()
            .and_then(|st| *st.progress.lock().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_signal_is_inert() {
        let s = StopSignal::never();
        assert!(!s.is_armed());
        assert_eq!(s.poll(usize::MAX), None);
        s.cancel();
        assert_eq!(s.poll(0), None);
        assert_eq!(s.progress(), None);
    }

    #[test]
    fn cancel_fires_and_wins_over_suspend() {
        let s = StopSignal::armed();
        assert_eq!(s.poll(0), None);
        s.request_suspend();
        assert_eq!(s.poll(0), Some(Interrupt::Suspended));
        s.cancel();
        assert_eq!(s.poll(0), Some(Interrupt::Cancelled));
        // Suspend cannot downgrade an existing cancel.
        s.request_suspend();
        assert_eq!(s.poll(0), Some(Interrupt::Cancelled));
    }

    #[test]
    fn call_triggers_fire_at_threshold() {
        let s = StopSignal::armed().suspend_after_calls(10);
        assert_eq!(s.poll(9), None);
        assert_eq!(s.poll(10), Some(Interrupt::Suspended));
        let c = StopSignal::armed()
            .cancel_after_calls(5)
            .suspend_after_calls(5);
        // Cancel trigger is checked first.
        assert_eq!(c.poll(5), Some(Interrupt::Cancelled));
    }

    #[test]
    fn deadline_in_the_past_fires() {
        let s = StopSignal::armed().with_deadline(Duration::from_secs(0));
        assert_eq!(s.poll(0), Some(Interrupt::Deadline));
        let far = StopSignal::armed().with_deadline(Duration::from_secs(3600));
        assert_eq!(far.poll(0), None);
    }

    #[test]
    fn progress_roundtrip_across_clones() {
        let s = StopSignal::armed();
        let observer = s.clone();
        let t = SessionTelemetry {
            what_if_calls: 7,
            ..SessionTelemetry::default()
        };
        s.publish(t, 0.25);
        let p = observer.progress().unwrap();
        assert_eq!(p.telemetry.what_if_calls, 7);
        assert_eq!(p.best_improvement, 0.25);
    }

    #[test]
    fn stop_reason_mapping() {
        use Interrupt::*;
        assert_eq!(
            StopReason::from_interrupt(Some(Cancelled), false),
            StopReason::Cancelled
        );
        assert_eq!(
            StopReason::from_interrupt(Some(Suspended), true),
            StopReason::Cancelled
        );
        assert_eq!(
            StopReason::from_interrupt(Some(Deadline), true),
            StopReason::Deadline
        );
        assert_eq!(
            StopReason::from_interrupt(None, true),
            StopReason::BudgetExhausted
        );
        assert_eq!(
            StopReason::from_interrupt(None, false),
            StopReason::Completed
        );
    }
}
