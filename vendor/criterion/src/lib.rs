//! Vendored, dependency-free stand-in for the `criterion` crate.
//!
//! Provides the benchmarking surface this workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], and the `criterion_group!`/`criterion_main!`
//! macros — with a simple median/mean/min/max wall-clock report instead
//! of criterion's statistical machinery. Good enough to spot order-of-
//! magnitude regressions offline; not a replacement for real criterion
//! when it is available.
//!
//! Two environment variables extend the runner:
//!
//! * `CRITERION_SNAPSHOT=<path>` — append one JSON line per benchmark
//!   (`{"bench":"group/id","median_ns":…,"min_ns":…}`); `scripts/bench_snapshot.sh`
//!   assembles the lines into a snapshot file.
//! * `CRITERION_SMOKE=1` — run a single sample per benchmark (plus the
//!   warm-up pass), so CI can execute every bench target in seconds as a
//!   does-it-run check without paying for stable timings.

use std::io::Write as _;
use std::time::{Duration, Instant};

fn smoke_mode() -> bool {
    std::env::var_os("CRITERION_SMOKE").is_some_and(|v| !v.is_empty() && v != "0")
}

/// How batched inputs are grouped; retained for signature compatibility
/// (this runner always sets up one input per measured invocation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Accepted for compatibility with criterion's harness setup; the
    /// vendored runner has no CLI options.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.default_sample_size;
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // Warm-up pass (also catches panics before timing starts).
        let mut bencher = Bencher::new(1);
        f(&mut bencher);

        let sample_size = if smoke_mode() { 1 } else { self.sample_size };
        let mut samples = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            let mut bencher = Bencher::new(1);
            f(&mut bencher);
            samples.push(bencher.per_iteration());
        }
        let mean: Duration = samples.iter().sum::<Duration>() / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let median = {
            let mut sorted = samples.clone();
            sorted.sort();
            let n = sorted.len();
            if n % 2 == 0 {
                (sorted[n / 2 - 1] + sorted[n / 2]) / 2
            } else {
                sorted[n / 2]
            }
        };
        println!(
            "  {}/{id}: median {median:?}, mean {mean:?} (min {min:?}, max {max:?}, n={})",
            self.name, sample_size
        );
        if let Some(path) = std::env::var_os("CRITERION_SNAPSHOT") {
            let line = format!(
                "{{\"bench\":\"{}/{}\",\"median_ns\":{},\"min_ns\":{}}}\n",
                self.name,
                id,
                median.as_nanos(),
                min.as_nanos()
            );
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| f.write_all(line.as_bytes()))
                .unwrap_or_else(|e| panic!("writing snapshot {path:?}: {e}"));
        }
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Self {
            iters,
            elapsed: Duration::ZERO,
        }
    }

    fn per_iteration(&self) -> Duration {
        self.elapsed / self.iters.max(1) as u32
    }

    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

/// Bundle bench functions into a group runner, mirroring criterion's
/// simple form: `criterion_group!(benches, bench_a, bench_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the named groups: `criterion_main!(benches);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("iter", |b| b.iter(|| 2u64.pow(10)));
        group.bench_function("iter_batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(smoke_group, sample_bench);

    #[test]
    fn runner_executes() {
        smoke_group();
    }
}
