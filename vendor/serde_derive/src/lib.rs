//! Vendored stand-in for `serde_derive`, written directly against the
//! `proc_macro` API (no `syn`/`quote` — they are unavailable offline).
//!
//! Supports exactly the shapes this workspace derives on:
//! - structs with named fields → JSON objects
//! - newtype structs → transparent (the inner value)
//! - other tuple structs → arrays
//! - enums with unit variants → strings, and data-carrying variants →
//!   externally tagged single-key objects (matching serde's JSON defaults)
//!
//! Generic parameters and `#[serde(...)]` attributes are not supported;
//! the workspace uses neither. Unsupported input produces a
//! `compile_error!` so failures are loud, not silent.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => match mode {
            Mode::Serialize => gen_serialize(&item),
            Mode::Deserialize => gen_deserialize(&item),
        },
        Err(msg) => format!("compile_error!({:?});", msg),
    };
    code.parse()
        .expect("serde_derive: generated code failed to parse")
}

// --- parsed representation ----------------------------------------------

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

// --- parsing -------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut toks = input.into_iter().peekable();

    // Skip outer attributes (doc comments arrive as #[doc = ...]) and
    // visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generics (on `{name}`)"
            ));
        }
    }

    let body = match kind.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Fields::Named(named_field_names(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Fields::Tuple(split_top_commas(g.stream()).len()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Struct(Fields::Unit),
            other => return Err(format!("unexpected struct body: {other:?}")),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unexpected enum body: {other:?}")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };

    Ok(Item { name, body })
}

/// Split a token stream on commas that sit at angle-bracket depth zero.
/// Commas nested in `(...)`/`[...]`/`{...}` are invisible here (those are
/// single `Group` trees), but commas inside generics like
/// `HashMap<String, TableId>` are top-level punctuation and must not split
/// a field — hence the depth tracking.
fn split_top_commas(ts: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tok in ts {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    chunks.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(tok);
    }
    if !cur.is_empty() {
        chunks.push(cur);
    }
    chunks
}

/// Extract the field name from one named-field chunk: skip attributes and
/// visibility, take the identifier before the `:`.
fn field_name(chunk: &[TokenTree]) -> Result<String, String> {
    let mut i = 0;
    while i < chunk.len() {
        match &chunk[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = chunk.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => return Ok(id.to_string()),
            other => return Err(format!("unexpected token in field: {other:?}")),
        }
    }
    Err("field without a name".to_string())
}

fn named_field_names(ts: TokenStream) -> Result<Vec<String>, String> {
    split_top_commas(ts).iter().map(|c| field_name(c)).collect()
}

fn parse_variants(ts: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for chunk in split_top_commas(ts) {
        let mut i = 0;
        // Skip variant attributes (doc comments).
        while matches!(&chunk.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        let name = match chunk.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        let fields = match chunk.get(i + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(split_top_commas(g.stream()).len())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(named_field_names(g.stream())?)
            }
            None => Fields::Unit,
            other => {
                return Err(format!(
                    "unexpected token after variant `{name}`: {other:?}"
                ))
            }
        };
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// --- code generation -----------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "({:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))",
                        f
                    )
                })
                .collect();
            format!("::serde::Value::Obj(vec![{}])", entries.join(", "))
        }
        Body::Struct(Fields::Tuple(1)) => {
            // Newtype structs are transparent, matching serde's JSON output.
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        Body::Struct(Fields::Tuple(n)) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Arr(vec![{}])", entries.join(", "))
        }
        Body::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(ser_variant_arm).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn ser_variant_arm(v: &Variant) -> String {
    let name = &v.name;
    match &v.fields {
        Fields::Unit => {
            format!("Self::{name} => ::serde::Value::Str({name:?}.to_string()),")
        }
        Fields::Tuple(1) => format!(
            "Self::{name}(f0) => ::serde::Value::Obj(vec![({name:?}.to_string(), \
             ::serde::Serialize::to_value(f0))]),"
        ),
        Fields::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let vals: Vec<String> = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b})"))
                .collect();
            format!(
                "Self::{name}({}) => ::serde::Value::Obj(vec![({name:?}.to_string(), \
                 ::serde::Value::Arr(vec![{}]))]),",
                binds.join(", "),
                vals.join(", ")
            )
        }
        Fields::Named(fields) => {
            let binds = fields.join(", ");
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))"))
                .collect();
            format!(
                "Self::{name} {{ {binds} }} => ::serde::Value::Obj(vec![({name:?}.to_string(), \
                 ::serde::Value::Obj(vec![{}]))]),",
                entries.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         v.get({f:?}).unwrap_or(&::serde::Value::Null))?"
                    )
                })
                .collect();
            format!("Ok(Self {{ {} }})", inits.join(", "))
        }
        Body::Struct(Fields::Tuple(1)) => {
            "Ok(Self(::serde::Deserialize::from_value(v)?))".to_string()
        }
        Body::Struct(Fields::Tuple(n)) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(items.get({i})\
                         .ok_or_else(|| ::serde::DeError::msg(\"array too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "match v {{ ::serde::Value::Arr(items) => Ok(Self({})), \
                 _ => Err(::serde::DeError::msg(\"expected array\")) }}",
                inits.join(", ")
            )
        }
        Body::Struct(Fields::Unit) => "Ok(Self)".to_string(),
        Body::Enum(variants) => gen_enum_deserialize(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .map(|v| format!("{:?} => return Ok(Self::{}),", v.name, v.name))
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| match &v.fields {
            Fields::Unit => None,
            Fields::Tuple(1) => Some(format!(
                "{:?} => return Ok(Self::{}(::serde::Deserialize::from_value(inner)?)),",
                v.name, v.name
            )),
            Fields::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::from_value(items.get({i})\
                             .ok_or_else(|| ::serde::DeError::msg(\"variant array too short\"))?)?"
                        )
                    })
                    .collect();
                Some(format!(
                    "{:?} => return match inner {{ ::serde::Value::Arr(items) => \
                     Ok(Self::{}({})), _ => Err(::serde::DeError::msg(\"expected array\")) }},",
                    v.name,
                    v.name,
                    inits.join(", ")
                ))
            }
            Fields::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(\
                             inner.get({f:?}).unwrap_or(&::serde::Value::Null))?"
                        )
                    })
                    .collect();
                Some(format!(
                    "{:?} => return Ok(Self::{} {{ {} }}),",
                    v.name,
                    v.name,
                    inits.join(", ")
                ))
            }
        })
        .collect();

    format!(
        "if let Some(s) = v.as_str() {{\n\
           match s {{ {} _ => return Err(::serde::DeError::msg(\
             format!(\"unknown {name} variant: {{s}}\"))), }}\n\
         }}\n\
         if let ::serde::Value::Obj(fields) = v {{\n\
           if fields.len() == 1 {{\n\
             let (tag, inner) = &fields[0];\n\
             let _ = inner;\n\
             match tag.as_str() {{ {} _ => return Err(::serde::DeError::msg(\
               format!(\"unknown {name} variant: {{tag}}\"))), }}\n\
           }}\n\
         }}\n\
         Err(::serde::DeError::msg(\"expected {name} as string or single-key object\"))",
        unit_arms.join(" "),
        tagged_arms.join(" ")
    )
}
