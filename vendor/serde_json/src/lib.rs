//! Vendored, dependency-free stand-in for the `serde_json` crate.
//!
//! Re-exports the [`Value`] tree from the vendored `serde` and provides the
//! pieces this workspace uses: [`to_value`], [`to_string`],
//! [`to_string_pretty`], and the [`json!`] macro (object literals with
//! string keys, array literals, and bare `Serialize` expressions).

use std::fmt;

use serde::Serialize;
pub use serde::Value;

/// Serialization failure. The vendored `Serialize` is infallible, so this
/// exists only to keep `to_string*` signatures source-compatible with the
/// real crate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Convert any `Serialize` value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Compact JSON encoding.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Human-readable JSON encoding with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Build a [`Value`] in place: `json!(null)`, `json!([a, b])`,
/// `json!({"key": expr, ...})`, or `json!(expr)` for any `Serialize` type.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Arr(vec![ $($crate::to_value(&$elem)),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Obj(vec![ $(($key.to_string(), $crate::to_value(&$val))),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            '[',
            ']',
            indent,
            depth,
            |out, item, indent, depth| {
                write_value(out, item, indent, depth);
            },
        ),
        Value::Obj(fields) => write_seq(
            out,
            fields.iter(),
            fields.len(),
            '{',
            '}',
            indent,
            depth,
            |out, (k, v), indent, depth| {
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth);
            },
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_seq<T>(
    out: &mut String,
    items: impl Iterator<Item = T>,
    len: usize,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; serde_json emits null for them too.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep the decimal point so the value round-trips as a float.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_encoding() {
        let v = json!({"a": 1u32, "b": [1.5f64, 2.0f64], "s": "x\"y"});
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":1,"b":[1.5,2.0],"s":"x\"y"}"#
        );
    }

    #[test]
    fn pretty_encoding() {
        let v = json!({"k": [1u32]});
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"k\": [\n    1\n  ]\n}"
        );
    }

    #[test]
    fn bare_exprs_and_null() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(3u64), Value::U64(3));
        let xs = vec![1u32, 2];
        assert_eq!(json!(xs), Value::Arr(vec![Value::U64(1), Value::U64(2)]));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string_pretty(&Value::Arr(vec![])).unwrap(), "[]");
        assert_eq!(to_string(&Value::Obj(vec![])).unwrap(), "{}");
    }
}
