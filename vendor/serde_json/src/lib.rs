//! Vendored, dependency-free stand-in for the `serde_json` crate.
//!
//! Re-exports the [`Value`] tree from the vendored `serde` and provides the
//! pieces this workspace uses: [`to_value`], [`to_string`],
//! [`to_string_pretty`], the [`json!`] macro (object literals with
//! string keys, array literals, and bare `Serialize` expressions), and the
//! [`from_str`]/[`value_from_str`] parsers.
//!
//! Parsing keeps `f64` values bit-exact across a round trip: the writer
//! emits the shortest representation that re-reads to the same bits
//! (`format!("{f}")`), and the reader funnels every fractional or exponent
//! token through `str::parse::<f64>`, which is correctly rounded.

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization failure. The vendored `Serialize` is infallible, so this
/// exists only to keep `to_string*` signatures source-compatible with the
/// real crate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Convert any `Serialize` value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Compact JSON encoding.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Human-readable JSON encoding with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a JSON document into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let v = value_from_str(s)?;
    T::from_value(&v).map_err(|e| Error(e.to_string()))
}

/// Parse a JSON document into a [`Value`] tree.
///
/// Number tokens containing `.`, `e`, or `E` become [`Value::F64`]; plain
/// integer tokens become [`Value::U64`] (or [`Value::I64`] when negative).
pub fn value_from_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Build a [`Value`] in place: `json!(null)`, `json!([a, b])`,
/// `json!({"key": expr, ...})`, or `json!(expr)` for any `Serialize` type.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Arr(vec![ $($crate::to_value(&$elem)),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Obj(vec![ $(($key.to_string(), $crate::to_value(&$val))),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            '[',
            ']',
            indent,
            depth,
            |out, item, indent, depth| {
                write_value(out, item, indent, depth);
            },
        ),
        Value::Obj(fields) => write_seq(
            out,
            fields.iter(),
            fields.len(),
            '{',
            '}',
            indent,
            depth,
            |out, (k, v), indent, depth| {
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth);
            },
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_seq<T>(
    out: &mut String,
    items: impl Iterator<Item = T>,
    len: usize,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; serde_json emits null for them too.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep the decimal point so the value round-trips as a float.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.parse_escape(&mut out)?;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_escape(&mut self, out: &mut String) -> Result<()> {
        let c = self.peek().ok_or_else(|| self.err("truncated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.parse_hex4()?;
                let code = if (0xd800..0xdc00).contains(&hi) {
                    // Surrogate pair: a low surrogate must follow.
                    if !self.eat_literal("\\u") {
                        return Err(self.err("unpaired high surrogate"));
                    }
                    let lo = self.parse_hex4()?;
                    if !(0xdc00..0xe000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid unicode escape"))?);
            }
            _ => return Err(self.err("unknown escape")),
        }
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    fractional = true;
                    self.pos += 1;
                }
                b'+' | b'-' if fractional => self.pos += 1,
                _ => break,
            }
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if fractional {
            // `str::parse::<f64>` is correctly rounded, so the shortest
            // representation emitted by `write_f64` re-reads bit-exactly.
            let f: f64 = tok.parse().map_err(|_| self.err("invalid number"))?;
            Ok(Value::F64(f))
        } else if tok.starts_with('-') {
            tok.parse()
                .map(Value::I64)
                .or_else(|_| tok.parse().map(Value::F64))
                .map_err(|_| self.err("invalid number"))
        } else {
            tok.parse()
                .map(Value::U64)
                .or_else(|_| tok.parse().map(Value::F64))
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_encoding() {
        let v = json!({"a": 1u32, "b": [1.5f64, 2.0f64], "s": "x\"y"});
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":1,"b":[1.5,2.0],"s":"x\"y"}"#
        );
    }

    #[test]
    fn pretty_encoding() {
        let v = json!({"k": [1u32]});
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"k\": [\n    1\n  ]\n}"
        );
    }

    #[test]
    fn bare_exprs_and_null() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(3u64), Value::U64(3));
        let xs = vec![1u32, 2];
        assert_eq!(json!(xs), Value::Arr(vec![Value::U64(1), Value::U64(2)]));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string_pretty(&Value::Arr(vec![])).unwrap(), "[]");
        assert_eq!(to_string(&Value::Obj(vec![])).unwrap(), "{}");
    }

    #[test]
    fn parse_basic_document() {
        let v =
            value_from_str(r#" { "a" : 1 , "b" : [ -2 , 3.5 , true , null ] , "s" : "x\"\nA" } "#)
                .unwrap();
        assert_eq!(
            v,
            json!({"a": 1u64, "b": [Value::I64(-2), Value::F64(3.5), Value::Bool(true), Value::Null], "s": "x\"\nA"})
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(value_from_str("").is_err());
        assert!(value_from_str("{").is_err());
        assert!(value_from_str("[1,]").is_err());
        assert!(value_from_str("1 2").is_err());
        assert!(value_from_str("\"abc").is_err());
        assert!(value_from_str("nul").is_err());
    }

    #[test]
    fn parse_surrogate_pair() {
        let v = value_from_str(r#""😀""#).unwrap();
        assert_eq!(v, Value::Str("😀".to_string()));
    }

    #[test]
    fn f64_roundtrip_is_bit_exact() {
        // Adversarial values plus a pseudo-random sweep: encoding then
        // parsing must reproduce the exact bit pattern.
        let mut samples = vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.1,
            2.0 / 3.0,
            1e-308,
            1e308,
            f64::MIN_POSITIVE,
            f64::EPSILON,
            123_456_789.123_456_79,
            (1u64 << 53) as f64,
        ];
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let f = f64::from_bits(x);
            if f.is_finite() {
                samples.push(f);
            }
        }
        for f in samples {
            let enc = to_string(&f).unwrap();
            let back: f64 = from_str(&enc).unwrap();
            assert_eq!(
                back.to_bits(),
                f.to_bits(),
                "value {f:?} encoded as {enc} re-read as {back:?}"
            );
        }
    }

    #[test]
    fn integer_width_roundtrip() {
        let enc = to_string(&u64::MAX).unwrap();
        assert_eq!(from_str::<u64>(&enc).unwrap(), u64::MAX);
        let enc = to_string(&i64::MIN).unwrap();
        assert_eq!(from_str::<i64>(&enc).unwrap(), i64::MIN);
    }

    #[test]
    fn typed_struct_roundtrip_through_value() {
        // Exercise from_str::<T> via the Value impl (derive-based types are
        // covered in the crates that define them).
        let v = json!({"xs": [1u64, 2u64], "name": "n"});
        let enc = to_string(&v).unwrap();
        assert_eq!(from_str::<Value>(&enc).unwrap(), v);
    }
}
