//! Vendored, dependency-free stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the serialization surface it actually needs: a JSON-shaped [`Value`]
//! tree, [`Serialize`]/[`Deserialize`] traits mapping types to and from
//! that tree, and (behind the `derive` feature) the `serde_derive` proc
//! macros. The data model is deliberately small — everything this
//! repository serializes is reports, telemetry, and experiment sidecars,
//! all of which are JSON.
//!
//! Conventions match real serde's JSON behavior where the workspace relies
//! on it: structs become objects, newtype structs are transparent, unit
//! enum variants become strings, and data-carrying variants become
//! single-key objects (externally tagged).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the intermediate representation every
/// `Serialize`/`Deserialize` implementation targets.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Unsigned integers (kept exact; JSON output has no decimal point).
    U64(u64),
    /// Negative integers.
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Insertion-ordered object (stable, readable JSON output).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::I64(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Deserialization failure: a path-less, message-only error (shrinking the
/// real serde error model to what the workspace needs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn msg(m: impl Into<String>) -> Self {
        Self(m.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Convert a value into the [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstruct a value from the [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

pub mod ser {
    pub use super::Serialize;
}

pub mod de {
    pub use super::{DeError, Deserialize};
}

// --- primitive impls -----------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_u64().ok_or_else(|| DeError::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw).map_err(|_| DeError::msg(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 { Value::U64(*self as u64) } else { Value::I64(*self as i64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_i64().ok_or_else(|| DeError::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw).map_err(|_| DeError::msg(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::msg("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::msg("expected f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::msg("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::msg("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::msg("expected single-char string")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// --- containers ----------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Arr(items) => Ok(($(
                        $t::from_value(
                            items.get($n).ok_or_else(|| DeError::msg("tuple too short"))?,
                        )?,
                    )+)),
                    _ => Err(DeError::msg("expected tuple array")),
                }
            }
        }
    )*};
}

ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::msg("expected array")),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for stable output: HashMap iteration order is not
        // deterministic across processes.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(fields)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::msg("expected object")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::msg("expected object")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        let back: Vec<(u32, String)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
        let opt: Option<u64> = None;
        assert_eq!(opt.to_value(), Value::Null);
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn map_output_is_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        match m.to_value() {
            Value::Obj(fields) => {
                assert_eq!(fields[0].0, "a");
                assert_eq!(fields[1].0, "b");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }
}
