//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access to
//! crates.io, so the workspace vendors the *exact API subset* it consumes:
//! [`StdRng`] (a xoshiro256** generator), [`SeedableRng::seed_from_u64`],
//! the [`Rng`]/[`RngExt`] method surface (`random`, `random_range`,
//! `random_bool`), and the [`IndexedRandom`] slice helper. Determinism is
//! the only contract the workspace relies on: every stochastic component
//! derives its generator from an explicit seed (see `ixtune-common::rng`),
//! and experiments must reproduce bit-for-bit across runs and across
//! serial/parallel sweeps. Statistical quality matches xoshiro256**, which
//! is more than adequate for Monte-Carlo tree search and workload
//! synthesis; cryptographic strength is explicitly out of scope.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `u64` entry point is used by this repo).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a primitive type with its standard distribution
    /// (`f64` in `[0, 1)`, integers uniform over their range, fair `bool`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a half-open or inclusive range. Panics on empty
    /// ranges, like the real `rand`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Alias kept because call sites import `rand::RngExt` for method syntax.
pub use Rng as RngExt;

/// Standard-distribution sampling for primitive types.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Use the high bit: xoshiro's low bits are its weakest.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Range sampling, implemented for `Range`/`RangeInclusive` of the integer
/// and float types the workspace draws from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Uniform slice element selection (`rand::prelude::IndexedRandom`).
pub trait IndexedRandom {
    type Item;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> IndexedRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded via SplitMix64 — the
    /// workspace's standard generator.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// Expose the raw xoshiro256** state for checkpointing. Combined
        /// with [`StdRng::from_state`], a generator can be serialized and
        /// later resumed to produce the exact same stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a state captured by
        /// [`StdRng::state`]. The all-zero state is degenerate (xoshiro
        /// outputs zeros forever); callers must only feed back states
        /// obtained from a live generator.
        pub fn from_state(s: [u64; 4]) -> Self {
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{IndexedRandom, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.random_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..17 {
            rng.next_u64();
        }
        let mut resumed = StdRng::from_state(rng.state());
        for _ in 0..64 {
            assert_eq!(rng.next_u64(), resumed.next_u64());
        }
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*xs.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
