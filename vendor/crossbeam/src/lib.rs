//! Vendored stand-in for the `crossbeam` crate, providing the scoped-thread
//! API this workspace uses (`crossbeam::thread::scope` + `Scope::spawn`),
//! implemented on top of `std::thread::scope` (stable since Rust 1.63).
//!
//! Semantics match crossbeam where the workspace relies on them: spawned
//! threads may borrow from the enclosing stack frame, `scope` joins all
//! threads before returning, and a panic — in the closure or in an
//! unjoined child — surfaces as `Err` from `scope` rather than unwinding
//! through the caller.

pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Error payload: boxed panic values from child threads, like crossbeam.
    pub type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

    /// Scope handle passed to `scope`'s closure; `spawn` mirrors
    /// crossbeam's signature, handing the closure a `&Scope` so nested
    /// spawns are possible (call sites typically write `s.spawn(|_| ...)`).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            // `inner` is Copy (&'scope std Scope), so the spawned closure
            // can rebuild a wrapper Scope that outlives the thread.
            let inner = self.inner;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope in which borrowing spawns are allowed. All
    /// spawned threads are joined before this returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn borrows_and_joins() {
            let data = [1u64, 2, 3, 4];
            let total = std::sync::atomic::AtomicU64::new(0);
            super::scope(|s| {
                for chunk in data.chunks(2) {
                    s.spawn(|_| {
                        total.fetch_add(
                            chunk.iter().sum::<u64>(),
                            std::sync::atomic::Ordering::Relaxed,
                        );
                    });
                }
            })
            .unwrap();
            assert_eq!(total.into_inner(), 10);
        }

        #[test]
        fn child_panic_is_err() {
            let r = super::scope(|s| {
                s.spawn(|_| panic!("child down"));
            });
            assert!(r.is_err());
        }

        #[test]
        fn nested_spawn_through_handle() {
            let r = super::scope(|s| {
                let h = s.spawn(|s2| {
                    let inner = s2.spawn(|_| 21u32);
                    inner.join().unwrap() * 2
                });
                h.join().unwrap()
            })
            .unwrap();
            assert_eq!(r, 42);
        }
    }
}
