//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! Implements the property-testing surface this workspace's tests use:
//! integer-range / tuple / string-pattern strategies, `prop_map`,
//! `prop_oneof!`, `proptest::collection::vec`, `any::<T>()`, the
//! `proptest!` test macro with `#![proptest_config(...)]`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` assertion family.
//!
//! Differences from real proptest, deliberate for an offline environment:
//! inputs are generated from a deterministic per-test seed (FNV of the
//! test name mixed with the case index), there is no shrinking (a failing
//! case reports its seed and message directly), and string strategies
//! support the single pattern shape the tests use: one character class
//! with a `{m,n}` repetition, e.g. `"[a-z0-9=<>'. ]{0,40}"`.

pub mod test_runner {
    /// Deterministic generator for test inputs (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            Self { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// A test-case outcome other than success.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Assertion failure: the property does not hold for this input.
        Fail(String),
        /// `prop_assume!` rejected the input; the case is retried.
        Reject,
    }

    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    fn fnv1a(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Drive one property: run `config.cases` accepted cases, retrying
    /// rejected inputs (bounded), panicking with seed + message on failure.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut property: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name);
        let mut accepted = 0u32;
        let mut attempt = 0u64;
        let max_attempts = (config.cases as u64) * 32 + 1024;
        while accepted < config.cases {
            attempt += 1;
            if attempt > max_attempts {
                panic!(
                    "proptest `{name}`: too many rejected inputs \
                     ({accepted}/{} accepted after {attempt} attempts)",
                    config.cases
                );
            }
            let seed = base ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut rng = TestRng::new(seed);
            match property(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest `{name}` failed (case {accepted}, seed {seed:#x}): {msg}")
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values (the only combinator the workspace
        /// uses).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Uniform choice between alternatives (`prop_oneof!` desugars here).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($t,)+) = self;
                    ($($t.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    /// `&'static str` as a pattern strategy. Supported shape: a single
    /// character class with ranges and literals, followed by `{m,n}` —
    /// e.g. `"[a-z]{1,6}"`, `"[ -~]{0,60}"`. Unsupported patterns panic at
    /// generation time so a new test fails loudly rather than silently
    /// sampling garbage.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, lo, hi) = parse_pattern(self)
                .unwrap_or_else(|e| panic!("unsupported string pattern {self:?}: {e}"));
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_pattern(pat: &str) -> Result<(Vec<char>, usize, usize), String> {
        let chars: Vec<char> = pat.chars().collect();
        if chars.first() != Some(&'[') {
            return Err("expected leading '['".into());
        }
        let close = chars
            .iter()
            .position(|&c| c == ']')
            .ok_or("unterminated character class")?;
        let mut alphabet = Vec::new();
        let class = &chars[1..close];
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i] as u32, class[i + 2] as u32);
                if a > b {
                    return Err(format!("inverted range {}-{}", class[i], class[i + 2]));
                }
                for c in a..=b {
                    alphabet.push(char::from_u32(c).ok_or("bad range char")?);
                }
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() {
            return Err("empty character class".into());
        }
        let rep: String = chars[close + 1..].iter().collect();
        let inner = rep
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .ok_or("expected '{m,n}' repetition")?;
        let (lo, hi) = match inner.split_once(',') {
            Some((l, h)) => (
                l.trim().parse::<usize>().map_err(|e| e.to_string())?,
                h.trim().parse::<usize>().map_err(|e| e.to_string())?,
            ),
            None => {
                let n = inner.trim().parse::<usize>().map_err(|e| e.to_string())?;
                (n, n)
            }
        };
        if lo > hi {
            return Err(format!("inverted repetition {{{lo},{hi}}}"));
        }
        Ok((alphabet, lo, hi))
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() >> 63 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_f64()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`]: an exact `usize` or a
    /// `Range<usize>`.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    pub struct VecStrategy<S, R> {
        elem: S,
        size: R,
    }

    pub fn vec<S: Strategy, R: SizeRange>(elem: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

// --- macros --------------------------------------------------------------

/// Choose uniformly between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { ... }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&$strategy, __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        Ok(())
                    })();
                __outcome
            });
        }
    )*};
}

/// Assert inside a proptest body; failure reports the input seed instead
/// of unwinding through the generator.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Discard the current input (retried with a fresh one, bounded).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    /// Path alias so `prop::collection::vec(...)` works, as in real
    /// proptest's prelude.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_respects_class_and_length() {
        let mut rng = TestRng::new(9);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn printable_ascii_range_pattern() {
        let mut rng = TestRng::new(10);
        for _ in 0..200 {
            let s = Strategy::generate(&"[ -~]{0,60}", &mut rng);
            assert!(s.len() <= 60);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples_compose(x in 3..10i64, (lo, hi) in (0..5usize, 5..9usize)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(lo < hi);
        }

        #[test]
        fn oneof_and_vec(xs in prop::collection::vec(prop_oneof![1..3u32, 10..12u32], 1..5)) {
            prop_assert!(!xs.is_empty() && xs.len() < 5);
            for x in xs {
                prop_assert!((1..3).contains(&x) || (10..12).contains(&x));
            }
        }

        #[test]
        fn assume_rejects_without_failing(n in 0..100u32) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
