#!/usr/bin/env bash
# Run the derivation micro-benchmarks and write a machine-readable
# snapshot of median ns-per-op to BENCH_5.json (or $1 if given).
#
# The vendored criterion stand-in appends one JSON line per benchmark to
# $CRITERION_SNAPSHOT; this script collects the lines and adds the
# headline ratios: the greedy-step speedup of the incremental
# DerivationState probe over the full derived_workload rescan it
# replaced, the further speedup of the frozen-cache parallel kernel over
# the incremental probe, the root-parallel MCTS session ratio, the
# warm-store ratios (cold-start session over the identical session
# seeded from a warm snapshot), and the compiled what-if kernel ratio
# (interpreted reference model over the compiled plan tables).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_5.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

CRITERION_SNAPSHOT="$tmp" cargo bench -p ixtune-bench --bench derivation

python3 - "$tmp" "$out" <<'EOF'
import json
import os
import sys

lines = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
medians = {e["bench"]: e["median_ns"] for e in lines}
doc = {"median_ns_per_op": medians, "host_threads": os.cpu_count()}
for universe in (64, 256, 1024):
    full = medians.get(f"greedy-step/full-rescan-u{universe}")
    inc = medians.get(f"greedy-step/incremental-u{universe}")
    if full and inc:
        doc[f"greedy_step_u{universe}_speedup"] = round(full / inc, 2)
    par = medians.get(f"greedy-step/parallel-u{universe}")
    if inc and par:
        doc[f"greedy_step_parallel_u{universe}_speedup"] = round(inc / par, 2)
for budget in (256, 1024):
    cold = medians.get(f"greedy-step/coldstart-u{budget}")
    warm = medians.get(f"greedy-step/warm-u{budget}")
    if cold and warm:
        doc[f"warm_session_u{budget}_speedup"] = round(cold / warm, 2)
comp = medians.get("whatif/compiled-call")
interp = medians.get("whatif/interpreted-call")
if comp and interp:
    doc["whatif_compiled_speedup"] = round(interp / comp, 2)
serial = medians.get("mcts/episodes-serial")
par = medians.get("mcts/episodes-parallel")
if serial and par:
    doc["mcts_root_parallel_speedup"] = round(serial / par, 2)
warm = medians.get("mcts/episodes-warm")
if serial and warm:
    doc["mcts_warm_session_speedup"] = round(serial / warm, 2)
with open(sys.argv[2], "w") as f:
    json.dump(doc, f, indent=1, sort_keys=True)
    f.write("\n")
print("wrote", sys.argv[2])
EOF
