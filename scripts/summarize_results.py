#!/usr/bin/env python3
"""Append a measured-results digest to EXPERIMENTS.md from results/*.csv.

Regenerate with:
    cargo run -p ixtune-bench --release --bin experiments -- all --seeds 3
    python3 scripts/summarize_results.py
"""
import io
import json
import os
import sys

RESULTS = os.path.join(os.path.dirname(__file__), "..", "results")


def load(name):
    path = os.path.join(RESULTS, name + ".json")
    if not os.path.exists(path):
        return []
    with open(path) as f:
        return json.load(f)


def table(rows, k):
    rows = [r for r in rows if r["k"] == k]
    budgets = sorted({r["budget"] for r in rows})
    algos = []
    for r in rows:
        if r["algorithm"] not in algos:
            algos.append(r["algorithm"])
    out = io.StringIO()
    out.write("| budget | " + " | ".join(algos) + " |\n")
    out.write("|---" * (len(algos) + 1) + "|\n")
    for b in budgets:
        cells = []
        for a in algos:
            match = [r for r in rows if r["budget"] == b and r["algorithm"] == a]
            if match:
                r = match[0]
                std = r["std_pct"]
                v = f"{r['mean_pct']:.1f}%"
                if r["seeds"] > 1:
                    v += f" ± {std:.1f}"
                cells.append(v)
            else:
                cells.append("-")
        out.write(f"| {b} | " + " | ".join(cells) + " |\n")
    return out.getvalue()


SECTIONS = [
    ("fig8", "Figure 8 — TPC-DS, greedy variants vs MCTS", [5, 10, 20]),
    ("fig9", "Figure 9 — Real-D, greedy variants vs MCTS", [10]),
    ("fig10", "Figure 10 — Real-M, greedy variants vs MCTS", [10]),
    ("fig11", "Figure 11 — TPC-DS, RL baselines vs MCTS", [10]),
    ("fig12", "Figure 12 — Real-D, RL baselines vs MCTS", [10]),
    ("fig13", "Figure 13 — Real-M, RL baselines vs MCTS", [10]),
    ("fig15a-sc", "Figure 15(a) — TPC-DS, DTA vs MCTS (with SC)", [10]),
    ("fig15a-nosc", "Figure 15(d) — TPC-DS, DTA vs MCTS (no SC)", [10]),
    ("fig16", "Figure 16 — JOB, greedy variants vs MCTS", [10]),
    ("fig17", "Figure 17 — TPC-H, greedy variants vs MCTS", [5, 10, 20]),
    ("fig18", "Figure 18 — JOB, RL baselines vs MCTS", [10]),
    ("fig19", "Figure 19 — TPC-H, RL baselines vs MCTS", [10]),
    ("fig20b-sc", "Figure 20(b) — TPC-H, DTA vs MCTS (with SC)", [10]),
    ("fig22-tpc-h", "Figure 22 (TPC-H) — ablation, fixed-step rollout", [10]),
    ("fig22-tpc-ds", "Figure 22 (TPC-DS) — ablation, fixed-step rollout", [10]),
    ("fig23-tpc-h", "Figure 23 (TPC-H) — ablation, random-step rollout", [10]),
    ("fig23-real-m", "Figure 23 (Real-M) — ablation, random-step rollout", [10]),
    ("robustness-tpc-h", "Extra — robustness to non-monotone costs (TPC-H)", [10]),
    ("extensions-tpc-h", "Extra — RAVE / Boltzmann / classic ε (TPC-H)", [10]),
]


def main():
    out = io.StringIO()
    out.write("\n## Measured results (seeds = 3, improvement %, mean ± std)\n")
    for name, title, ks in SECTIONS:
        rows = load(name)
        if not rows:
            continue
        for k in ks:
            if not any(r["k"] == k for r in rows):
                continue
            out.write(f"\n### {title}, K = {k}\n\n")
            out.write(table(rows, k))
    digest = out.getvalue()

    exp_path = os.path.join(os.path.dirname(__file__), "..", "EXPERIMENTS.md")
    with open(exp_path) as f:
        content = f.read()
    marker = "\n## Measured results"
    if marker in content:
        content = content[: content.index(marker)]
    with open(exp_path, "w") as f:
        f.write(content + digest)
    print(f"wrote digest ({len(digest)} bytes) into EXPERIMENTS.md")


if __name__ == "__main__":
    sys.exit(main())
