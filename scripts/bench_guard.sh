#!/usr/bin/env bash
# Guard the disabled-obs hot path: re-measure the derivation
# micro-benchmarks and fail if any greedy-step median regresses more
# than IXTUNE_BENCH_TOLERANCE (default 3%) against the committed
# BENCH_5.json snapshot (or the baseline given as $1).
#
# The observability layer must be zero-cost when disabled — the benches
# run with `Obs::disabled()`, so a regression here means the disabled
# path stopped being free. Speedups are always fine; only slowdowns
# beyond the tolerance fail. The bench is repeated IXTUNE_BENCH_RUNS
# times (default 3) and the per-series *minimum* across all samples is
# compared against the snapshot median: the floor is the least
# noise-contaminated estimate of what the code can still do, so a
# loaded host does not fail the guard spuriously while a real slowdown
# (which lifts the floor, not just the tail) still does.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="${1:-BENCH_5.json}"
tolerance="${IXTUNE_BENCH_TOLERANCE:-0.03}"
runs="${IXTUNE_BENCH_RUNS:-3}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# The criterion stand-in appends one line per benchmark, so repeated
# runs accumulate samples in the same file. IXTUNE_BENCH_DURABLE=1 adds
# the gated `greedy-step/durable-coldstart-*` series: the same cold-start
# sessions interleaved with settle-time WAL appends, proving the persist
# layer is inert for the tuning hot path (guarded against the plain
# coldstart floors below).
for _ in $(seq "$runs"); do
    CRITERION_SNAPSHOT="$tmp" IXTUNE_BENCH_DURABLE=1 \
        cargo bench -p ixtune-bench --bench derivation
done

python3 - "$tmp" "$baseline" "$tolerance" <<'EOF'
import json
import sys

measured = {}
for line in open(sys.argv[1]):
    if line.strip():
        e = json.loads(line)
        floor = e.get("min_ns", e["median_ns"])
        prev = measured.get(e["bench"])
        measured[e["bench"]] = floor if prev is None else min(prev, floor)
baseline = json.load(open(sys.argv[2]))["median_ns_per_op"]
tolerance = float(sys.argv[3])

# The shipped hot paths: the incremental DerivationState probe, the
# frozen-cache parallel kernel (the one that takes the Obs handle),
# whole cold-start and warm-seeded greedy sessions (now served by the
# compiled kernel + sparse informed-candidate scan), and the raw
# compiled what-if call. full-rescan and whatif/interpreted-call are
# the pre-change comparators kept in the bench for the historical
# speedup ratios; they are not guarded paths.
guarded = sorted(
    name
    for name in baseline
    if name.startswith(
        (
            "greedy-step/incremental-",
            "greedy-step/parallel-",
            "greedy-step/coldstart-",
            "greedy-step/warm-",
            "whatif/compiled-",
        )
    )
    and name in measured
)
if not guarded:
    sys.exit("no guarded series shared between run and baseline")

failures = []
for name in guarded:
    old, new = baseline[name], measured[name]
    ratio = new / old
    verdict = "OK" if ratio <= 1 + tolerance else "REGRESSION"
    print(f"{verdict:>10}  {name}: {old} -> {new} ns/op ({(ratio - 1):+.1%})")
    if ratio > 1 + tolerance:
        failures.append(name)

# The durability leg: the same cold-start session with settle-time WAL
# appends interleaved must cost nothing on the tuning hot path. Each
# durable series is compared against the plain companion measured
# back-to-back in the same process (so host load drift cannot masquerade
# as persist overhead), floored by the committed BENCH_5.json coldstart
# number — on a quiet host the committed floor is the binding one.
durable = sorted(
    name for name in measured if name.startswith("greedy-step/durable-coldstart-")
)
if not durable:
    sys.exit("durability leg missing: no greedy-step/durable-coldstart-* measured")
for name in durable:
    companion = name.replace("durable-coldstart-", "durable-baseline-")
    committed = name.replace("durable-", "", 1)
    if companion not in measured:
        sys.exit(f"durability leg missing its companion series {companion}")
    old = max(measured[companion], baseline.get(committed, 0))
    new = measured[name]
    ratio = new / old
    verdict = "OK" if ratio <= 1 + tolerance else "REGRESSION"
    print(f"{verdict:>10}  {name}: {old} -> {new} ns/op ({(ratio - 1):+.1%})")
    if ratio > 1 + tolerance:
        failures.append(name)

if failures:
    sys.exit(
        f"hot path regressed beyond {tolerance:.0%} vs {sys.argv[2]}: "
        + ", ".join(failures)
    )
print(
    f"bench guard passed ({len(guarded)} series + {len(durable)} durability "
    f"legs within {tolerance:.0%})"
)
EOF
